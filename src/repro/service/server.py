"""The asyncio HTTP/JSONL daemon: mining as a service.

Dependency-free by construction — ``asyncio.start_server`` plus a
hand-rolled HTTP/1.1 reader/writer; no web framework.  The endpoint
surface is :data:`repro.service.router.ROUTES`; the semantics:

* ``POST /v1/{process}/events`` — JSONL event lines (single object or
  batch).  Accepted batches are *queued* (202) and folded by the
  tenant's worker task; a full queue answers 429 with ``Retry-After``.
* ``POST /v1/{process}/flush`` — drain the tenant's queue, finalize
  every open execution window, refresh the model snapshot; returns the
  ingest accounting.  The synchronization point batch-parity checks
  hinge on.
* ``GET /v1/{process}/model`` — the mined model from the cached
  snapshot (``?format=json|dot|edges|ascii``); text formats are
  byte-identical to ``repro-miner mine`` stdout for the same records.
* ``GET /v1/{process}/state`` — the canonical v3 state envelope,
  byte-identical to ``mine --stream --state-out``.
* ``POST /v1/{process}/lint`` — the structural lint rules over the
  snapshot's model.
* ``GET /metrics`` — Prometheus text exposition of the daemon's
  recorder.  ``GET /healthz`` — liveness (503 while draining).

Ingest work runs *off* the event loop: request bodies decode in a
small executor pool, and each tenant's worker task hands whole queued
batches to a single fold thread (``Tenant.ingest`` → ``push_batch``),
so large folds never stall request handling.  A per-tenant lock
serializes the fold thread against loop-side snapshot refreshes, so
reads are still served from snapshots — never from a half-folded
state — and queue backpressure (429 on a full queue) is unchanged.
Graceful shutdown (SIGTERM/SIGINT) drains every queue, flushes open
windows, checkpoints every tenant via
:meth:`~repro.resilience.session.DurableSession.handoff`, and a
restarted daemon recovers each tenant byte-identically.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.lint import LintConfig
from repro.lint.emitters import render as render_lint
from repro.obs import (
    NULL_RECORDER,
    RunManifest,
    render_prometheus,
)
from repro.resilience.durable import durable_write
from repro.resilience.session import HandoffReceipt
from repro.service import wire
from repro.service.registry import (
    ServiceError,
    Tenant,
    TenantConfig,
    TenantRegistry,
)
from repro.service.router import RouteError, resolve

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_BYTES = 32768
# Bodies at or above this size are decoded off-loop in the decode pool;
# smaller bodies decode inline so the handler reaches the ingest queue
# without yielding (keeps single-request backpressure deterministic).
_OFFLOAD_BODY_BYTES = 64 * 1024
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes


@dataclass(frozen=True)
class Response:
    """One response the app hands back to the HTTP writer."""

    status: int
    body: bytes
    content_type: str = wire.MEDIA_JSON
    headers: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def json(
        cls,
        status: int,
        document: object,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> "Response":
        return cls(
            status=status,
            body=wire.dump_json(document),
            headers=headers,
        )

    @classmethod
    def error(
        cls,
        status: int,
        message: str,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> "Response":
        return cls.json(
            status, wire.error_document(message), headers=headers
        )


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one daemon instance needs to run."""

    data_dir: Path
    host: str = "127.0.0.1"
    port: int = 8787
    tenant: TenantConfig = field(default_factory=TenantConfig)
    #: Batches a tenant may have queued before 429 backpressure.
    queue_limit: int = 64
    max_tenants: int = 1024
    max_body_bytes: int = 8 * 1024 * 1024
    #: Idle seconds before open execution windows are auto-flushed
    #: (0 disables periodic finalization).
    idle_flush_seconds: float = 30.0
    maintenance_interval: float = 1.0
    #: When set, the bound port is written here after listen (CI boots
    #: on port 0 and discovers the ephemeral port from this file).
    port_file: Optional[Path] = None


class TenantWorker:
    """The asyncio side of one tenant: queue + off-loop fold task.

    The worker task is the only submitter of this tenant's fold work,
    and it holds :attr:`lock` across each executor hand-off — any
    loop-side code that reads or refreshes the tenant's state (flush
    handlers, snapshot reads, maintenance) takes the same lock and is
    thereby serialized against the fold thread.
    """

    def __init__(
        self,
        tenant: Tenant,
        queue_limit: int,
        recorder,
        fold_pool: ThreadPoolExecutor,
    ) -> None:
        self.tenant = tenant
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self.recorder = recorder
        self.fold_pool = fold_pool
        self.lock = asyncio.Lock()
        self.errors: List[dict] = []
        self.last_activity = asyncio.get_running_loop().time()
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"tenant:{tenant.process}"
        )

    def _record_error(self, exc: Exception) -> None:
        kind = "limit" if "Limit" in type(exc).__name__ else "format"
        self.errors.append({"kind": kind, "error": str(exc)})
        del self.errors[:-8]
        self.recorder.count(
            "repro_service_ingest_errors_total", labels={"kind": kind}
        )

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            lines = await self.queue.get()
            try:
                async with self.lock:
                    await loop.run_in_executor(
                        self.fold_pool, self.tenant.ingest, lines
                    )
            except ReproError as exc:
                self._record_error(exc)
            finally:
                self.queue.task_done()
                self.last_activity = loop.time()
                self.recorder.gauge(
                    "repro_service_queue_depth",
                    self.queue.qsize(),
                    labels={"process": self.tenant.process},
                )
            if self.queue.empty():
                self.tenant.maybe_refresh()

    async def drain(self) -> None:
        """Wait until every queued batch has been folded."""
        await self.queue.join()

    async def stop(self) -> None:
        await self.drain()
        self.task.cancel()
        try:
            await self.task
        except asyncio.CancelledError:
            pass


class ServiceApp:
    """Request handling over the tenant registry (transport-free).

    ``handle`` maps a :class:`Request` to a :class:`Response`; the
    socket server below is one caller, tests call it directly.
    """

    def __init__(
        self, config: ServiceConfig, recorder=NULL_RECORDER
    ) -> None:
        self.config = config
        self.recorder = recorder
        self.registry = TenantRegistry(
            config.data_dir,
            config.tenant,
            recorder=recorder,
            max_tenants=config.max_tenants,
        )
        self._workers: Dict[str, TenantWorker] = {}
        # One fold thread total: folds for different tenants serialize
        # through it (each tenant is already serialized by its worker
        # task + lock), which keeps the mining states, journals and the
        # shared recorder single-writer.  Body decoding is pure and
        # gets its own small pool so it never queues behind a fold.
        self._fold_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-fold"
        )
        self._decode_pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-decode"
        )
        self.draining = False
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def startup(self) -> List[str]:
        """Re-open persisted tenants; returns their recovery summaries."""
        self._started_at = asyncio.get_running_loop().time()
        summaries = []
        for process, recovery in self.registry.startup():
            summaries.append(f"{process}: {recovery.summary()}")
        return summaries

    def worker_for(self, tenant: Tenant) -> TenantWorker:
        worker = self._workers.get(tenant.process)
        if worker is None:
            worker = TenantWorker(
                tenant,
                self.config.queue_limit,
                self.recorder,
                self._fold_pool,
            )
            self._workers[tenant.process] = worker
        return worker

    async def _with_tenant(self, process: str, fn: Callable):
        """Run ``fn`` serialized against the tenant's fold thread.

        Loop-side reads that can refresh a snapshot (and flushes) must
        not observe a half-folded state; taking the worker's lock
        orders them after any in-flight executor fold.  Tenants
        without a worker have no off-loop activity to race.
        """
        worker = self._workers.get(process)
        if worker is None:
            return fn()
        async with worker.lock:
            return fn()

    async def shutdown(self) -> Dict[str, HandoffReceipt]:
        """Drain every queue, then checkpoint and close every tenant."""
        self.draining = True
        for worker in list(self._workers.values()):
            await worker.stop()
        self._workers.clear()
        self._fold_pool.shutdown(wait=True)
        self._decode_pool.shutdown(wait=True)
        return self.registry.close_all()

    async def maintenance_pass(self) -> int:
        """Periodic window finalization for idle tenants.

        A tenant whose queue is empty, whose snapshot is stale, and
        which has not folded anything for ``idle_flush_seconds`` gets
        its open execution windows flushed — so a quiescent tenant's
        model converges without requiring a client-side flush.
        """
        if self.config.idle_flush_seconds <= 0:
            return 0
        loop = asyncio.get_running_loop()
        flushed = 0
        for worker in list(self._workers.values()):
            idle = loop.time() - worker.last_activity
            if (
                worker.queue.empty()
                and not worker.lock.locked()
                and idle >= self.config.idle_flush_seconds
                and (
                    worker.tenant.stream.open_executions
                    or worker.tenant.stale
                )
            ):
                async with worker.lock:
                    worker.tenant.flush()
                flushed += 1
        return flushed

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def handle(self, request: Request) -> Response:
        endpoint = "unrouted"
        try:
            match = resolve(request.method, request.path)
            endpoint = match.handler
            handler = getattr(self, f"_handle_{match.handler}")
            if match.process is None:
                response = await handler(request)
            else:
                response = await handler(request, match.process)
        except RouteError as exc:
            headers: Tuple[Tuple[str, str], ...] = ()
            if exc.allow:
                headers = (("Allow", exc.allow),)
            response = Response.error(
                exc.status, str(exc), headers=headers
            )
        except ServiceError as exc:
            response = Response.error(exc.status, str(exc))
        except ReproError as exc:
            response = Response.error(500, str(exc))
        self.recorder.count(
            "repro_service_requests_total",
            labels={
                "endpoint": endpoint,
                "status": str(response.status),
            },
        )
        return response

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_healthz(self, request: Request) -> Response:
        if self.draining:
            return Response.json(503, {"status": "draining"})
        uptime = 0.0
        if self._started_at is not None:
            uptime = (
                asyncio.get_running_loop().time() - self._started_at
            )
        return Response.json(
            200,
            {
                "status": "ok",
                "tenants": len(self.registry),
                "uptime_seconds": round(uptime, 3),
            },
        )

    async def _handle_metrics(self, request: Request) -> Response:
        manifest = RunManifest.collect(self.recorder, command="serve")
        return Response(
            status=200,
            body=render_prometheus(manifest).encode("utf-8"),
            content_type=wire.MEDIA_PROMETHEUS,
        )

    async def _handle_tenants(self, request: Request) -> Response:
        documents = []
        for tenant in self.registry.tenants():
            documents.append(
                await self._with_tenant(tenant.process, tenant.stats)
            )
        return Response.json(200, {"tenants": documents})

    async def _handle_events(
        self, request: Request, process: str
    ) -> Response:
        if self.draining:
            return Response.error(
                503, "daemon is draining", headers=(("Retry-After", "5"),)
            )
        try:
            if len(request.body) >= _OFFLOAD_BODY_BYTES:
                lines = await asyncio.get_running_loop().run_in_executor(
                    self._decode_pool,
                    wire.split_event_lines,
                    request.body,
                )
            else:
                # Small bodies decode inline: no yield to other tasks,
                # so queue backpressure stays exactly as deterministic
                # as it was when ingest ran on-loop.
                lines = wire.split_event_lines(request.body)
        except UnicodeDecodeError:
            return Response.error(400, "body is not valid UTF-8")
        if not lines:
            return Response.error(400, "no event lines in body")
        tenant, _ = self.registry.get_or_create(process)
        worker = self.worker_for(tenant)
        try:
            worker.queue.put_nowait(lines)
        except asyncio.QueueFull:
            self.recorder.count("repro_service_backpressure_total")
            return Response.error(
                429,
                f"ingest queue for {process!r} is full "
                f"({self.config.queue_limit} batches)",
                headers=(("Retry-After", "1"),),
            )
        self.recorder.count(
            "repro_service_events_total", amount=len(lines)
        )
        self.recorder.gauge(
            "repro_service_queue_depth",
            worker.queue.qsize(),
            labels={"process": process},
        )
        return Response.json(
            202,
            {
                "process": process,
                "queued": len(lines),
                "pending_batches": worker.queue.qsize(),
            },
        )

    async def _handle_flush(
        self, request: Request, process: str
    ) -> Response:
        tenant, _ = self.registry.get_or_create(process)
        worker = self.worker_for(tenant)
        await worker.drain()
        folded = await self._with_tenant(process, tenant.flush)
        document = tenant.stats()
        document["flushed_executions"] = folded
        document["errors"] = list(worker.errors)
        return Response.json(200, document)

    def _tenant_for_read(self, process: str) -> Tenant:
        self.registry.validate_process_id(process)
        tenant = self.registry.get(process)
        if tenant is None:
            raise ServiceError(
                f"unknown process {process!r}", status=404
            )
        return tenant

    async def _handle_model(
        self, request: Request, process: str
    ) -> Response:
        tenant = self._tenant_for_read(process)
        fmt = request.query.get("format", wire.FORMAT_JSON)
        if fmt not in wire.MODEL_FORMATS:
            raise ServiceError(
                f"format must be one of {wire.MODEL_FORMATS}, "
                f"got {fmt!r}"
            )
        snapshot = await self._with_tenant(process, tenant.snapshot)
        if snapshot is None:
            raise ServiceError(
                f"process {process!r} has no model yet "
                f"(no finalized executions)",
                status=404,
            )
        headers = (("X-Snapshot-Seq", str(snapshot.seq)),)
        if fmt == wire.FORMAT_JSON:
            return Response.json(
                200,
                wire.model_document(
                    process=process,
                    algorithm=snapshot.algorithm,
                    graph=snapshot.graph,
                    executions=snapshot.executions,
                    variants=snapshot.variants,
                    snapshot_seq=snapshot.seq,
                    threshold=self.config.tenant.threshold,
                ),
                headers=headers,
            )
        text = wire.render_graph_block(
            snapshot.graph,
            fmt,
            name=process,
            algorithm=snapshot.algorithm,
        )
        return Response(
            status=200,
            body=text.encode("utf-8"),
            content_type=wire.MEDIA_TEXT,
            headers=headers,
        )

    async def _handle_state(
        self, request: Request, process: str
    ) -> Response:
        tenant = self._tenant_for_read(process)
        snapshot = await self._with_tenant(
            process, tenant.fresh_snapshot
        )
        if snapshot is None:
            raise ServiceError(
                f"process {process!r} has no state yet", status=404
            )
        return Response(
            status=200,
            body=snapshot.envelope.encode("utf-8"),
            content_type=wire.MEDIA_JSON,
            headers=(("X-Snapshot-Seq", str(snapshot.seq)),),
        )

    async def _handle_lint(
        self, request: Request, process: str
    ) -> Response:
        tenant = self._tenant_for_read(process)
        options: Dict[str, object] = {}
        if request.body.strip():
            try:
                options = json.loads(request.body)
            except ValueError as exc:
                raise ServiceError(
                    f"lint config is not valid JSON: {exc}"
                ) from exc
            if not isinstance(options, dict):
                raise ServiceError("lint config must be a JSON object")
        config = LintConfig(
            select=options.get("select"),
            ignore=options.get("ignore"),
            dag_mode=bool(options.get("require_acyclic", False)),
            noise_threshold=max(int(options.get("threshold", 0)), 0),
        )
        report = await self._with_tenant(
            process, lambda: tenant.lint(config)
        )
        return Response.json(
            200,
            {
                "process": process,
                "exit_code": report.exit_code,
                "report": json.loads(
                    render_lint(report, "json", artifact=process)
                ),
            },
        )


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
async def _read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Request]:
    """Parse one HTTP/1.1 request; None on a cleanly closed connection.

    Raises :class:`ValueError` on malformed framing (the connection
    handler answers 400 and closes).
    """
    try:
        raw_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ValueError("truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise ValueError("request line too long") from exc
    if len(raw_line) > _MAX_REQUEST_LINE:
        raise ValueError("request line too long")
    parts = raw_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError("malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readuntil(b"\r\n")
        header_bytes += len(line)
        if header_bytes > _MAX_HEADER_BYTES:
            raise ValueError("headers too large")
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, separator, value = text.partition(":")
        if not separator:
            raise ValueError(f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise ValueError("chunked transfer encoding is not supported")
    length = int(headers.get("content-length", "0") or "0")
    if length < 0:
        raise ValueError("negative content-length")
    if length > max_body_bytes:
        raise ValueError(f"body larger than {max_body_bytes} bytes")
    body = await reader.readexactly(length) if length else b""
    path, _, query_text = target.partition("?")
    query: Dict[str, str] = {}
    for pair in query_text.split("&"):
        if pair:
            key, _, value = pair.partition("=")
            query[key] = value
    return Request(
        method=method,
        path=path,
        query=query,
        headers=headers,
        body=body,
    )


def _render_response(response: Response, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in response.headers)
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + response.body


class ServiceServer:
    """The socket front-end: accept loop, signals, graceful shutdown."""

    def __init__(
        self, config: ServiceConfig, recorder=NULL_RECORDER
    ) -> None:
        self.config = config
        self.recorder = recorder
        self.app = ServiceApp(config, recorder=recorder)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        self._maintenance: Optional[asyncio.Task] = None
        self.port: Optional[int] = None

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(
                        reader, self.config.max_body_bytes
                    )
                except ValueError as exc:
                    writer.write(
                        _render_response(
                            Response.error(400, str(exc)), False
                        )
                    )
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                keep_alive = (
                    request.headers.get("connection", "").lower()
                    != "close"
                )
                try:
                    response = await self.app.handle(request)
                except Exception as exc:  # last-resort 500
                    response = Response.error(
                        500, f"internal error: {exc}"
                    )
                writer.write(_render_response(response, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _maintenance_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.maintenance_interval)
            await self.app.maintenance_pass()

    def request_stop(self, why: str) -> None:
        """Signal-handler entry: begin graceful shutdown."""
        print(f"repro-service: {why}, draining", file=sys.stderr)
        self.app.draining = True
        if self._stop is not None:
            self._stop.set()

    async def start(self) -> int:
        """Bind, announce, and start serving; returns the bound port."""
        self._stop = asyncio.Event()
        for summary in self.app.startup():
            print(f"repro-service: recovered {summary}", file=sys.stderr)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
        )
        sockets = self._server.sockets or ()
        self.port = sockets[0].getsockname()[1] if sockets else None
        if self.config.port_file is not None:
            durable_write(
                Path(self.config.port_file), f"{self.port}\n"
            )
        print(
            f"repro-service: listening on "
            f"http://{self.config.host}:{self.port} "
            f"(data: {self.config.data_dir})",
            file=sys.stderr,
        )
        self._maintenance = asyncio.get_running_loop().create_task(
            self._maintenance_loop()
        )
        return int(self.port or 0)

    async def run_until_stopped(self) -> Dict[str, HandoffReceipt]:
        """Serve until a stop is requested, then shut down cleanly."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    self.request_stop,
                    signal.Signals(signum).name,
                )
            except NotImplementedError:  # pragma: no cover - platform
                pass
        assert self._stop is not None
        await self._stop.wait()
        return await self.stop()

    async def stop(self) -> Dict[str, HandoffReceipt]:
        """Stop accepting, drain tenants, checkpoint, hand off."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._maintenance is not None:
            self._maintenance.cancel()
            try:
                await self._maintenance
            except asyncio.CancelledError:
                pass
        receipts = await self.app.shutdown()
        for process, receipt in sorted(receipts.items()):
            print(
                f"repro-service: checkpointed {process!r} at seq "
                f"{receipt.covered_seq} "
                f"({'clean' if receipt.clean else 'DIRTY'})",
                file=sys.stderr,
            )
        return receipts


async def _serve_async(
    config: ServiceConfig, recorder=NULL_RECORDER
) -> int:
    server = ServiceServer(config, recorder=recorder)
    await server.start()
    await server.run_until_stopped()
    return 0


def serve(config: ServiceConfig, recorder=NULL_RECORDER) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the exit status."""
    return asyncio.run(_serve_async(config, recorder=recorder))
