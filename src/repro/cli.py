"""Command-line interface.

Subcommands
-----------
``mine``
    Mine a process graph (and optionally conditions) from a log file.
``generate``
    Generate a synthetic log (Section 8.1) or a simulated Flowmark log.
``stats``
    Print summary statistics of a log file.
``conditions``
    Mine the graph, then learn and print every edge's condition.
``simulate``
    Execute a model file through the workflow engine into a log file.
``compare``
    Diff a purported model file against what a log actually shows.
``evolve``
    Produce the next model version from a log of successful executions.
``timing``
    Print duration/makespan analytics of a log.
``coverage``
    Report how thoroughly a log exercises a model's edges.
``variants``
    Print the log's distinct execution variants.
``convert``
    Convert a log between the tab-separated and JSON-lines formats.
``lint``
    Statically analyze a model file with the :mod:`repro.lint` rules.
``merge-states``
    Fold shard state files into one model (out-of-core mining).
``verify-state``
    Fsck a mining-state/checkpoint file or a ``--journal`` session
    directory (integrity envelopes, journal frames, torn tails).

The log file format is the tab-separated codec of
:mod:`repro.logs.codec` (``mine`` also accepts ``.jsonl`` logs); model
files use the line format of :mod:`repro.model.serialize`.  All results
go to stdout; diagnostics (including the ``mine --on-error`` ingest
summary) go to stderr.  Exit status: 0 on success, 1 on malformed input
or I/O errors, 2 on a ``compare`` mismatch or when ``mine``'s built-in
verification finds error-level lint diagnostics (suppress with
``--no-verify``), 3 when ``mine`` succeeded but records were
quarantined/dropped during ingestion.  ``lint`` exits with the report's
severity code: 0 clean or info-only, 1 warnings, 2 errors.
``verify-state`` exits 0 when everything verifies, 1 when the target is
missing/unreadable, 2 when corruption was detected.

Durability (``mine --stream``): ``--journal DIR`` write-ahead journals
accepted executions and checkpoints the fold so a killed run can be
continued with ``--resume`` to the same bytes an uninterrupted run
produces; ``--fold-timeout``/``--fold-retries`` supervise the parallel
fold (see :mod:`repro.resilience` and docs/RELIABILITY.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.analysis.diffing import diff_against_log
from repro.core.kernels import KERNEL_NAMES
from repro.core.miner import (
    ALGORITHM_AUTO,
    ALGORITHM_CYCLIC,
    ALGORITHM_GENERAL,
    ALGORITHM_SPECIAL,
    MiningResult,
    ProcessMiner,
)
from repro.datasets.flowmark import FLOWMARK_PROCESS_NAMES, flowmark_dataset
from repro.datasets.synthetic import SyntheticConfig, synthetic_dataset
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.errors import EmptyLogError, MiningError, ReproError
from repro.lint import LintConfig, Severity, lint_model
from repro.lint.emitters import FORMATS as LINT_FORMATS
from repro.lint.emitters import model_line_map, render
from repro.lint.engine import severity_overrides
from repro.logs.codec import ingest_log_file, read_log_file, write_log_file
from repro.logs.ingest import (
    DEFAULT_STREAM_WINDOW,
    POLICIES,
    POLICY_STRICT,
    IngestLimits,
    IngestReport,
    Quarantine,
    publish_ingest_report,
)
from repro.obs import (
    FORMAT_JSONL,
    FORMATS as METRICS_FORMATS,
    NULL_RECORDER,
    ObsRecorder,
    RunManifest,
    write_manifest,
)
from repro.logs.jsonl import ingest_log_jsonl_file
from repro.logs.stats import format_statistics, summarize_log
from repro.logs.timing import format_timing_report
from repro.model.evolution import evolve_model
from repro.model.serialize import load_model, save_model


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not an integer"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError("limit must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-miner",
        description=(
            "Mine process model graphs from workflow logs "
            "(Agrawal, Gunopulos, Leymann; EDBT 1998)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    mine = commands.add_parser(
        "mine", help="mine a process graph from a log file"
    )
    mine.add_argument("log", help="path to a log file (codec format)")
    mine.add_argument(
        "--algorithm",
        choices=[
            ALGORITHM_AUTO,
            ALGORITHM_SPECIAL,
            ALGORITHM_GENERAL,
            ALGORITHM_CYCLIC,
        ],
        default=ALGORITHM_AUTO,
        help="which of the paper's algorithms to run (default: auto)",
    )
    mine.add_argument(
        "--threshold",
        type=int,
        default=0,
        help="Section 6 noise threshold T (0 disables)",
    )
    mine.add_argument(
        "--format",
        choices=["ascii", "dot", "edges"],
        default="ascii",
        help="output format for the mined graph",
    )
    mine.add_argument(
        "--exact-minimize",
        action="store_true",
        help=(
            "post-process with exact conformal minimization (Section "
            "4's slow alternative; see repro.core.minimize)"
        ),
    )
    mine.add_argument(
        "--no-verify",
        action="store_true",
        help=(
            "skip the post-mining lint verification (error-level "
            "repro.lint rules run over the mined model by default)"
        ),
    )
    mine.add_argument(
        "--on-error",
        choices=list(POLICIES),
        default=POLICY_STRICT,
        help=(
            "ingest error policy: strict aborts on the first bad "
            "record (default), skip quarantines bad input, repair "
            "additionally fixes repairable traces"
        ),
    )
    mine.add_argument(
        "--quarantine",
        metavar="PATH",
        help=(
            "write quarantined records to a JSON-lines dead-letter "
            "file at PATH"
        ),
    )
    mine.add_argument(
        "--limit-executions", type=_positive_int, metavar="N",
        help="abort if the log holds more than N executions",
    )
    mine.add_argument(
        "--limit-events-per-execution", type=_positive_int, metavar="N",
        help="abort if any execution holds more than N events",
    )
    mine.add_argument(
        "--limit-activities", type=_positive_int, metavar="N",
        help="abort if the log names more than N distinct activities",
    )
    mine.add_argument(
        "--jobs", type=_positive_int, metavar="N",
        help=(
            "worker processes for pair extraction and step-5 marking "
            "(default: the REPRO_JOBS environment variable, else 1; "
            "the mined graph is identical for any value)"
        ),
    )
    mine.add_argument(
        "--kernel",
        choices=list(KERNEL_NAMES),
        default=None,
        help=(
            "mining kernel for the Algorithm 2/3 hot paths (default: "
            "the REPRO_KERNEL environment variable, else bitset; "
            "numpy requires numpy to be installed; the mined graph "
            "is identical for every kernel)"
        ),
    )
    mine.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print per-stage wall-clock timings and variant/cache "
            "statistics to stderr"
        ),
    )
    mine.add_argument(
        "--stream",
        action="store_true",
        help=(
            "out-of-core mining: fold executions into a mergeable "
            "mining state as they are read instead of materializing "
            "the log (memory stays constant in the execution count; "
            "auto resolves to general-dag or cyclic, never "
            "special-dag, and --exact-minimize is unavailable)"
        ),
    )
    mine.add_argument(
        "--stream-window",
        type=_positive_int,
        metavar="N",
        help=(
            "with --stream: an execution finalizes once N accepted "
            "records pass without extending it (default: 1024; logs "
            "written by this tool are contiguous, so any value works)"
        ),
    )
    mine.add_argument(
        "--state-out",
        metavar="PATH",
        help=(
            "with --stream: also write the folded mining state to "
            "PATH (a v3 checkpoint, usable as a merge-states shard "
            "or an incremental-miner resume point)"
        ),
    )
    mine.add_argument(
        "--journal",
        metavar="DIR",
        help=(
            "durable session directory (implies --stream): every "
            "accepted execution is write-ahead journaled into "
            "DIR/wal/ before folding and the state is checkpointed "
            "periodically, so a crashed run resumes with --resume; "
            "the fold runs serially (see docs/RELIABILITY.md)"
        ),
    )
    mine.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        metavar="N",
        default=None,
        help=(
            "with --journal: checkpoint the folded state every N "
            "executions (default: 256)"
        ),
    )
    mine.add_argument(
        "--resume",
        action="store_true",
        help=(
            "with --journal: recover the last checkpoint plus the "
            "journal tail from DIR, then continue mining the log, "
            "skipping the executions the recovered state already "
            "covers; the result is identical to an uninterrupted run"
        ),
    )
    mine.add_argument(
        "--fold-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "with --stream and --jobs > 1: supervise the parallel "
            "fold — a worker chunk not done after SECONDS is treated "
            "as hung, its pool recycled and the chunk retried"
        ),
    )
    mine.add_argument(
        "--fold-retries",
        type=int,
        metavar="N",
        default=None,
        help=(
            "with --stream and --jobs > 1: retry a failed/hung fold "
            "chunk N times (seeded exponential backoff) before "
            "quarantining its executions as poisoned-chunk records "
            "and continuing degraded (default: 2 when supervision "
            "is on)"
        ),
    )
    _add_metrics_arguments(mine)

    merge_states = commands.add_parser(
        "merge-states",
        help=(
            "merge mining-state shard files (from mine --stream "
            "--state-out or incremental checkpoints) and finish the "
            "mined graph"
        ),
    )
    merge_states.add_argument(
        "states", nargs="+", help="paths to mining-state files to merge"
    )
    merge_states.add_argument(
        "--output",
        metavar="PATH",
        help="also write the merged state to PATH (v3 checkpoint)",
    )
    merge_states.add_argument(
        "--state-only",
        action="store_true",
        help="merge and write --output without mining a graph",
    )
    merge_states.add_argument(
        "--threshold",
        type=int,
        default=0,
        help="Section 6 noise threshold T applied at finish (0 disables)",
    )
    merge_states.add_argument(
        "--format",
        choices=["ascii", "dot", "edges"],
        default="ascii",
        help="output format for the mined graph",
    )
    merge_states.add_argument(
        "--jobs", type=_positive_int, metavar="N",
        help="worker processes for the finishing step-5 marking",
    )
    merge_states.add_argument(
        "--kernel",
        choices=list(KERNEL_NAMES),
        default=None,
        help=(
            "mining kernel for the finishing steps (default: "
            "REPRO_KERNEL, else bitset)"
        ),
    )

    verify_state = commands.add_parser(
        "verify-state",
        help=(
            "fsck a mining-state/checkpoint file or a --journal "
            "session directory (integrity envelopes, journal frames)"
        ),
    )
    verify_state.add_argument(
        "target",
        help=(
            "a state/checkpoint file, or a durable session directory "
            "(checkpoint.json + wal/)"
        ),
    )

    generate = commands.add_parser(
        "generate", help="generate a synthetic or simulated-Flowmark log"
    )
    generate.add_argument("output", help="path to write the log to")
    generate.add_argument(
        "--kind",
        choices=["synthetic", *FLOWMARK_PROCESS_NAMES],
        default="synthetic",
        help="dataset kind (default: synthetic random DAG)",
    )
    generate.add_argument(
        "--vertices", type=int, default=10,
        help="synthetic graph size, START/END included",
    )
    generate.add_argument(
        "--executions", type=int, default=100,
        help="number of executions to log",
    )
    generate.add_argument("--seed", type=int, default=0, help="RNG seed")

    stats = commands.add_parser(
        "stats", help="print summary statistics of a log file"
    )
    stats.add_argument("log", help="path to a log file")

    conditions = commands.add_parser(
        "conditions",
        help="mine the graph, then learn each edge's Boolean condition",
    )
    conditions.add_argument("log", help="path to a log file with outputs")
    conditions.add_argument(
        "--threshold", type=int, default=0, help="noise threshold T"
    )

    simulate = commands.add_parser(
        "simulate",
        help="execute a model file through the workflow engine",
    )
    simulate.add_argument("model", help="path to a model file")
    simulate.add_argument("output", help="path to write the log to")
    simulate.add_argument(
        "--executions", type=int, default=100,
        help="number of executions to simulate",
    )
    simulate.add_argument(
        "--agents", type=int, default=2, help="agent pool size"
    )
    simulate.add_argument("--seed", type=int, default=0, help="RNG seed")

    compare = commands.add_parser(
        "compare",
        help="diff a purported model file against what a log shows",
    )
    compare.add_argument("model", help="path to the purported model file")
    compare.add_argument("log", help="path to a log file")
    compare.add_argument(
        "--threshold", type=int, default=0, help="noise threshold T"
    )

    evolve = commands.add_parser(
        "evolve",
        help="produce the next model version from a log",
    )
    evolve.add_argument("model", help="path to the current model file")
    evolve.add_argument("log", help="path to a log of executions")
    evolve.add_argument(
        "--output", help="path to write the evolved model to"
    )
    evolve.add_argument(
        "--threshold", type=int, default=0, help="noise threshold T"
    )
    evolve.add_argument(
        "--prune-unobserved",
        action="store_true",
        help="also remove model edges the log never exercised",
    )
    evolve.add_argument(
        "--learn-conditions",
        action="store_true",
        help="learn Section 7 conditions for newly added edges",
    )

    timing = commands.add_parser(
        "timing", help="print duration/makespan analytics of a log"
    )
    timing.add_argument("log", help="path to a log file")

    coverage = commands.add_parser(
        "coverage",
        help="report how thoroughly a log exercises a model's edges",
    )
    coverage.add_argument("model", help="path to a model file")
    coverage.add_argument("log", help="path to a log file")

    variants = commands.add_parser(
        "variants", help="print the log's distinct execution variants"
    )
    variants.add_argument("log", help="path to a log file")
    variants.add_argument(
        "--top", type=int, default=10, help="variants to show"
    )

    convert = commands.add_parser(
        "convert",
        help=(
            "convert a log between the tab-separated and JSON-lines "
            "formats (by file extension: .jsonl vs anything else)"
        ),
    )
    convert.add_argument("input", help="path to the input log")
    convert.add_argument("output", help="path to the output log")

    lint = commands.add_parser(
        "lint",
        help="statically analyze a model file (stable PMxxx diagnostics)",
    )
    lint.add_argument("model", help="path to a model file")
    lint.add_argument(
        "--log",
        help=(
            "event log to check the model against (enables the PM3xx "
            "log-vs-model rules)"
        ),
    )
    lint.add_argument(
        "--format",
        choices=list(LINT_FORMATS),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--select",
        metavar="CODES",
        help=(
            "comma-separated code prefixes to run, e.g. PM1,PM203 "
            "(default: all rules)"
        ),
    )
    lint.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated code prefixes to skip, e.g. PM3",
    )
    lint.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="CODE=LEVEL",
        help=(
            "override one rule's severity (error/warning/info), e.g. "
            "--severity PM301=error; repeatable"
        ),
    )
    lint.add_argument(
        "--threshold",
        type=int,
        default=0,
        help="Section 6 noise threshold T for PM302 (0 disables)",
    )
    lint.add_argument(
        "--require-acyclic",
        action="store_true",
        help="DAG mode: cycles and 2-cycles (PM109/PM110) become errors",
    )
    _add_metrics_arguments(lint)

    serve = commands.add_parser(
        "serve",
        help=(
            "run the multi-tenant mining daemon (HTTP/JSONL; see "
            "docs/SERVICE.md)"
        ),
    )
    serve.add_argument(
        "data_dir",
        metavar="DATA_DIR",
        help=(
            "root directory for per-tenant durable sessions "
            "(journal + checkpoints + dead-letter files); an existing "
            "directory's tenants are recovered at boot"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8787,
        help="TCP port (0 picks an ephemeral port; default: 8787)",
    )
    serve.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port to PATH once listening",
    )
    serve.add_argument(
        "--algorithm",
        choices=[ALGORITHM_AUTO, ALGORITHM_GENERAL, ALGORITHM_CYCLIC],
        default=ALGORITHM_AUTO,
        help=(
            "mining algorithm per tenant (special-dag needs the "
            "materialized log, exactly like mine --stream; "
            "default: auto)"
        ),
    )
    serve.add_argument(
        "--threshold",
        type=int,
        default=0,
        help="Section 6 noise threshold T (0 disables)",
    )
    serve.add_argument(
        "--on-error",
        choices=list(POLICIES),
        default="skip",
        help=(
            "ingest error policy per tenant (default: skip — a "
            "service quarantines bad events instead of failing the "
            "batch)"
        ),
    )
    serve.add_argument(
        "--stream-window",
        type=_positive_int,
        metavar="N",
        default=None,
        help=(
            "an execution finalizes once N accepted records pass "
            "without extending it (default: 1024)"
        ),
    )
    serve.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        metavar="N",
        default=None,
        help="checkpoint each tenant every N folds (default: 256)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=_positive_int,
        metavar="N",
        default=64,
        help=(
            "refresh a tenant's served model once N folds accumulate "
            "past the cached snapshot (default: 64)"
        ),
    )
    serve.add_argument(
        "--queue-limit",
        type=_positive_int,
        metavar="N",
        default=64,
        help=(
            "queued ingest batches per tenant before 429 "
            "backpressure (default: 64)"
        ),
    )
    serve.add_argument(
        "--idle-flush-seconds",
        type=float,
        metavar="SECONDS",
        default=30.0,
        help=(
            "finalize a tenant's open execution windows after this "
            "long without new events (0 disables; default: 30)"
        ),
    )
    serve.add_argument(
        "--max-tenants",
        type=_positive_int,
        metavar="N",
        default=1024,
        help="maximum live tenants (default: 1024)",
    )
    serve.add_argument(
        "--kernel",
        choices=list(KERNEL_NAMES),
        default=None,
        help="mining kernel for snapshot finishes (default: bitset)",
    )
    serve.add_argument(
        "--limit-executions", type=_positive_int, metavar="N",
        help="per tenant: abort a batch beyond N executions",
    )
    serve.add_argument(
        "--limit-events-per-execution", type=_positive_int, metavar="N",
        help="per tenant: abort a batch if an execution exceeds N events",
    )
    serve.add_argument(
        "--limit-activities", type=_positive_int, metavar="N",
        help="per tenant: abort a batch beyond N distinct activities",
    )
    _add_metrics_arguments(serve)
    return parser


def _add_metrics_arguments(subparser: argparse.ArgumentParser) -> None:
    """The shared ``repro.obs`` export flags (``mine`` and ``lint``)."""
    subparser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help=(
            "enable the observability layer and write the run manifest "
            "(spans, counters, input digest, environment) to PATH"
        ),
    )
    subparser.add_argument(
        "--metrics-format",
        choices=list(METRICS_FORMATS),
        default=FORMAT_JSONL,
        help=(
            "manifest format: jsonl trace events (default), prom "
            "(Prometheus text exposition) or text (human summary)"
        ),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "mine":
            return _cmd_mine(args)
        if args.command == "merge-states":
            return _cmd_merge_states(args)
        if args.command == "verify-state":
            return _cmd_verify_state(args)
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "conditions":
            return _cmd_conditions(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "evolve":
            return _cmd_evolve(args)
        if args.command == "timing":
            return _cmd_timing(args)
        if args.command == "coverage":
            return _cmd_coverage(args)
        if args.command == "variants":
            return _cmd_variants(args)
        if args.command == "convert":
            return _cmd_convert(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "serve":
            return _cmd_serve(args)
        parser.error(f"unknown command {args.command!r}")
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _metrics_out_problem(args: argparse.Namespace) -> Optional[str]:
    """Why ``--metrics-out`` cannot be written, or None if it can.

    Checked *before* any work starts: a manifest that would only fail
    at write time — after minutes of mining — is a wasted run.  The
    durable writer stages a temp sibling in the target's directory, so
    the parent must exist and be writable/traversable.
    """
    import os
    from pathlib import Path

    target = getattr(args, "metrics_out", None)
    if not target:
        return None
    path = Path(target)
    if path.is_dir():
        return "is a directory"
    parent = path.parent if str(path.parent) else Path(".")
    if not parent.exists():
        return f"parent directory {parent} does not exist"
    if not parent.is_dir():
        return f"parent {parent} is not a directory"
    if not os.access(parent, os.W_OK | os.X_OK):
        return f"parent directory {parent} is not writable"
    if path.exists() and not os.access(path, os.W_OK):
        return "existing file is not writable"
    return None


def _require_writable_metrics_out(
    args: argparse.Namespace,
) -> Optional[int]:
    """Fail fast (exit 2) when the manifest target is unwritable."""
    problem = _metrics_out_problem(args)
    if problem is None:
        return None
    print(
        f"error: --metrics-out {args.metrics_out}: {problem}",
        file=sys.stderr,
    )
    return 2


def _metrics_recorder(args: argparse.Namespace):
    """The run's recorder: real when ``--metrics-out`` was given.

    ``--profile`` also records: the stage sub-span breakdown (e.g.
    prepare's parse/intern/pairs) only exists as recorder spans.
    """
    if getattr(args, "metrics_out", None) or getattr(
        args, "profile", False
    ):
        return ObsRecorder()
    return NULL_RECORDER


def _write_metrics(
    args: argparse.Namespace,
    recorder,
    command: str,
    input_path: str,
    config: dict,
) -> None:
    """Snapshot ``recorder`` into a manifest file (``--metrics-out``)."""
    # The recorder may be live for --profile alone; only write a file
    # when one was asked for.
    if not recorder.enabled or not getattr(args, "metrics_out", None):
        return
    manifest = RunManifest.collect(
        recorder,
        command=command,
        input_path=input_path,
        config=config,
    )
    write_manifest(manifest, args.metrics_out, args.metrics_format)
    print(
        f"metrics: wrote {args.metrics_format} manifest to "
        f"{args.metrics_out}",
        file=sys.stderr,
    )


def _ingest_for_mine(args: argparse.Namespace, recorder=NULL_RECORDER):
    limits = IngestLimits(
        max_executions=args.limit_executions,
        max_events_per_execution=args.limit_events_per_execution,
        max_activities=args.limit_activities,
    )
    reader = (
        ingest_log_jsonl_file
        if args.log.endswith(".jsonl")
        else ingest_log_file
    )
    with recorder.span("ingest", policy=args.on_error):
        with Quarantine(args.quarantine) as quarantine:
            result = reader(
                args.log,
                policy=args.on_error,
                limits=limits,
                quarantine=quarantine,
            )
    publish_ingest_report(result.report, recorder)
    report = result.report
    if args.on_error != POLICY_STRICT or not report.clean:
        print(report.summary(), file=sys.stderr)
        if quarantine.path is not None and len(quarantine):
            print(
                f"  dead-letter file: {quarantine.path}", file=sys.stderr
            )
    return result


def _print_graph(graph, args: argparse.Namespace, name: str) -> None:
    """Emit the mined graph header + body (``mine``/``merge-states``).

    Rendering lives in :func:`repro.service.wire.render_graph_block`,
    shared with the service's model endpoint — one renderer is what
    keeps HTTP responses byte-identical to this stdout.
    """
    from repro.service.wire import render_graph_block

    sys.stdout.write(render_graph_block(graph, args.format, name=name))


def _cmd_mine_stream(args: argparse.Namespace) -> int:
    """``mine --stream``: fold the log without materializing it.

    One labelled pass resolves ``auto`` (repetition seen -> cyclic,
    else the state projects onto the plain view and finishes as
    general-dag); an explicit ``--algorithm general-dag`` folds plainly
    from the start.  The mined graph is identical to the batch path —
    except that ``auto`` never picks special-dag, whose every-activity
    precondition cannot be checked without the whole log.

    With ``--journal DIR`` the fold runs through a
    :class:`~repro.resilience.session.DurableSession`: accepted
    executions are write-ahead journaled, the state is checkpointed
    every ``--checkpoint-every`` folds, and ``--resume`` recovers a
    crashed run and continues it to the same bytes an uninterrupted
    run produces.  Without a journal, ``--fold-timeout`` /
    ``--fold-retries`` supervise the parallel fold instead (hung or
    crashed workers are retried; chunks that exhaust the budget are
    quarantined as ``poisoned-chunk`` records and the mine continues
    degraded).
    """
    from repro.core.cyclic import merge_instances
    from repro.core.general_dag import MiningTrace
    from repro.core.parallel import RetryPolicy
    from repro.core.state import fold_executions, save_state
    from repro.logs.codec import iter_ingest_log_file
    from repro.logs.ingest import REASON_POISONED_CHUNK
    from repro.logs.jsonl import iter_ingest_log_jsonl_file

    if args.algorithm == ALGORITHM_SPECIAL:
        raise MiningError(
            "--stream cannot run special-dag: Algorithm 1's "
            "every-activity-every-execution precondition needs the "
            "materialized log; use general-dag (same graph on "
            "conforming logs) or drop --stream"
        )
    if getattr(args, "exact_minimize", False):
        raise MiningError(
            "--exact-minimize replays the materialized log; "
            "drop --stream to use it"
        )
    recorder = _metrics_recorder(args)
    limits = IngestLimits(
        max_executions=args.limit_executions,
        max_events_per_execution=args.limit_events_per_execution,
        max_activities=args.limit_activities,
    )
    reader = (
        iter_ingest_log_jsonl_file
        if args.log.endswith(".jsonl")
        else iter_ingest_log_file
    )
    report = IngestReport()
    firsts: set = set()
    lasts: set = set()
    # Auto needs the labelled view to detect repetition in one pass.
    labelled = args.algorithm != ALGORITHM_GENERAL

    session = None
    journal_skip = 0
    if args.journal:
        from repro.resilience.session import (
            DEFAULT_CHECKPOINT_EVERY,
            DurableSession,
        )

        session = DurableSession(
            args.journal,
            labelled=labelled,
            threshold=args.threshold,
            checkpoint_every=(
                args.checkpoint_every
                if args.checkpoint_every is not None
                else DEFAULT_CHECKPOINT_EVERY
            ),
            recorder=recorder,
        )
        if args.resume:
            recovery = session.recover()
            print(recovery.summary(), file=sys.stderr)
            journal_skip = recovery.covered
        elif (
            session.checkpoint_path.exists()
            or session.journal.last_seq
        ):
            raise MiningError(
                f"journal directory {args.journal} already holds a "
                "session; pass --resume to continue it or remove the "
                "directory for a fresh run"
            )
    elif args.resume:
        raise MiningError("--resume requires --journal DIR")

    retry = None
    if args.fold_timeout is not None or args.fold_retries is not None:
        retry = RetryPolicy(
            timeout=args.fold_timeout,
            max_retries=(
                args.fold_retries
                if args.fold_retries is not None
                else RetryPolicy().max_retries
            ),
        )

    with Quarantine(args.quarantine) as quarantine:
        executions = reader(
            args.log,
            policy=args.on_error,
            limits=limits,
            quarantine=quarantine,
            report=report,
            window=args.stream_window or DEFAULT_STREAM_WINDOW,
            journal=session.journal if session is not None else None,
            journal_skip=journal_skip,
        )

        def tracked():
            for execution in executions:
                if len(execution):
                    firsts.add(execution.first_activity)
                    lasts.add(execution.last_activity)
                yield execution

        def on_poisoned(poisoned, reason: str) -> None:
            count = quarantine.add_poisoned_executions(
                poisoned, reason
            )
            report.quarantined_executions += count
            report.reasons[REASON_POISONED_CHUNK] += count

        with recorder.span("stream_fold", policy=args.on_error):
            if session is not None:
                # Durable path: serial write-ahead fold.  Already-
                # covered executions still flow through tracked() so
                # source/sink detection matches an uninterrupted run;
                # only their (re-)fold is skipped.
                for position, execution in enumerate(tracked(), 1):
                    if position > journal_skip:
                        session.fold(execution)
                state = session.finalize()
            else:
                state = fold_executions(
                    tracked(),
                    labelled=labelled,
                    jobs=args.jobs,
                    recorder=recorder,
                    retry=retry,
                    on_poisoned=(
                        on_poisoned if retry is not None else None
                    ),
                )
    publish_ingest_report(report, recorder)
    if args.on_error != POLICY_STRICT or not report.clean:
        print(report.summary(), file=sys.stderr)
        if quarantine.path is not None and len(quarantine):
            print(
                f"  dead-letter file: {quarantine.path}", file=sys.stderr
            )
    if state.execution_count == 0:
        raise EmptyLogError("the log contains no executions")

    if args.algorithm == ALGORITHM_CYCLIC or (
        labelled and state.has_repetition()
    ):
        algorithm = ALGORITHM_CYCLIC
    else:
        algorithm = ALGORITHM_GENERAL
        if labelled:
            state = state.to_plain()
    trace = MiningTrace(recorder=recorder)
    with recorder.span("mine", algorithm=algorithm):
        graph = state.finish(
            threshold=args.threshold,
            trace=trace,
            jobs=args.jobs,
            kernel=args.kernel,
        )
        if algorithm == ALGORITHM_CYCLIC:
            graph = merge_instances(graph)
    if args.state_out:
        save_state(state, args.state_out, threshold=args.threshold)
        print(
            f"state: wrote {state.execution_count} executions "
            f"({state.variant_count} variants) to {args.state_out}",
            file=sys.stderr,
        )
    if args.profile:
        _print_profile(trace)
    print(f"# algorithm: {algorithm}")
    _print_graph(graph, args, name=report.process_name or "mined")
    result = MiningResult(
        graph=graph,
        algorithm=algorithm,
        trace=trace,
        source=next(iter(firsts)) if len(firsts) == 1 else None,
        sink=next(iter(lasts)) if len(lasts) == 1 else None,
    )
    verified = args.no_verify or _verify_mined(
        result,
        None,
        args.threshold,
        recorder,
        process_name=report.process_name,
    )
    _write_metrics(
        args,
        recorder,
        command="mine",
        input_path=args.log,
        config={
            "algorithm": args.algorithm,
            "resolved_algorithm": algorithm,
            "threshold": args.threshold,
            "on_error": args.on_error,
            "jobs": args.jobs or 0,
            "stream": True,
        },
    )
    if not verified:
        return 2
    return 3 if report.dropped else 0


def _cmd_merge_states(args: argparse.Namespace) -> int:
    """``merge-states``: fold shard state files, then finish once."""
    from repro.core.cyclic import merge_instances
    from repro.core.state import MODE_CYCLIC, load_state, save_state

    merged = None
    mode = None
    for path in args.states:
        state, meta = load_state(path)
        if merged is None:
            merged, mode = state, meta["mode"]
        elif meta["mode"] != mode:
            raise MiningError(
                f"cannot merge {path}: its mode {meta['mode']!r} does "
                f"not match the first shard's {mode!r}"
            )
        else:
            merged.merge(state)
    print(
        f"merged {len(args.states)} state file(s): "
        f"{merged.execution_count} executions, "
        f"{merged.variant_count} variants",
        file=sys.stderr,
    )
    if args.output:
        save_state(merged, args.output, mode=mode, threshold=args.threshold)
        print(f"wrote merged state to {args.output}")
    if args.state_only:
        return 0
    graph = merged.finish(
        threshold=args.threshold,
        jobs=args.jobs,
        kernel=args.kernel,
    )
    if mode == MODE_CYCLIC:
        graph = merge_instances(graph)
    print(f"# algorithm: {mode}")
    _print_graph(graph, args, name="merged")
    return 0


def _cmd_verify_state(args: argparse.Namespace) -> int:
    """``verify-state``: fsck a checkpoint file or session directory.

    Exit codes: 0 everything verifies, 1 the target is missing or
    unreadable, 2 corruption was detected (a torn journal tail is
    *tolerated* — recovery discards it — and reported without failing).
    """
    from pathlib import Path

    from repro.core.state import load_state
    from repro.errors import CheckpointError, JournalError
    from repro.resilience.journal import scan_journal
    from repro.resilience.session import (
        CHECKPOINT_NAME,
        PREVIOUS_SUFFIX,
        WAL_DIRECTORY,
    )

    target = Path(args.target)
    if not target.exists():
        print(f"verify-state: {target}: not found", file=sys.stderr)
        return 1

    def check_file(path: Path) -> int:
        try:
            state, meta = load_state(path)
        except CheckpointError as exc:
            if not path.exists():
                print(f"{path}: missing")
                return 1
            print(f"{path}: CORRUPT ({exc})")
            return 2
        guard = (
            "crc32c verified"
            if meta.get("verified")
            else "no integrity envelope (pre-hardening checkpoint)"
        )
        print(
            f"{path}: ok — v{meta['version']} {meta['mode']}, "
            f"{state.execution_count} executions, "
            f"{state.variant_count} variants, "
            f"journal seq {meta['journal_seq']}; {guard}"
        )
        return 0

    if target.is_file():
        return check_file(target)

    status = 0
    checkpoint = target / CHECKPOINT_NAME
    prev = checkpoint.with_name(checkpoint.name + PREVIOUS_SUFFIX)
    wal = target / WAL_DIRECTORY
    if not checkpoint.exists() and not prev.exists() and not (
        wal.is_dir()
    ):
        print(
            f"verify-state: {target}: not a durable session "
            f"(no {CHECKPOINT_NAME}, no {WAL_DIRECTORY}/)",
            file=sys.stderr,
        )
        return 1
    if checkpoint.exists():
        primary = check_file(checkpoint)
        if primary == 2 and prev.exists():
            if check_file(prev) == 0:
                print(
                    "  recovery would fall back to the .prev "
                    "checkpoint plus the retained journal tail"
                )
        status = max(status, primary)
    elif prev.exists():
        status = max(status, check_file(prev))
    else:
        print(f"{checkpoint}: no checkpoint yet")
    if wal.is_dir():
        try:
            scan = scan_journal(wal)
        except JournalError as exc:
            print(f"{wal}: CORRUPT ({exc})")
            return 2
        if scan.corrupt:
            print(f"{wal}: CORRUPT ({scan.detail})")
            return 2
        note = (
            f"; torn tail tolerated ({scan.detail})"
            if scan.torn_tail
            else ""
        )
        print(
            f"{wal}: ok — {len(scan.records)} record(s) in "
            f"{scan.segments} segment(s), last seq "
            f"{scan.last_seq}{note}"
        )
    else:
        print(f"{wal}: no journal")
    return status


def _cmd_mine(args: argparse.Namespace) -> int:
    # An unwritable manifest target must fail before mining starts,
    # not after minutes of work.
    failed = _require_writable_metrics_out(args)
    if failed is not None:
        return failed
    # A journal only makes sense around the streaming fold.
    if getattr(args, "journal", None):
        args.stream = True
    if args.stream:
        return _cmd_mine_stream(args)
    if getattr(args, "resume", False):
        raise MiningError("--resume requires --journal DIR")
    recorder = _metrics_recorder(args)
    result_ingest = _ingest_for_mine(args, recorder)
    log = result_ingest.log
    miner = ProcessMiner(
        algorithm=args.algorithm,
        threshold=args.threshold,
        jobs=args.jobs,
        recorder=recorder,
        kernel=args.kernel,
    )
    result = miner.mine(log)
    if args.profile:
        _print_profile(result.trace)
    graph = result.graph
    print(f"# algorithm: {result.algorithm}")
    if getattr(args, "exact_minimize", False):
        from repro.core.minimize import minimize_conformal

        before = graph.edge_count
        with recorder.span("mine/exact_minimize"):
            graph = minimize_conformal(graph, log)
        result.graph = graph
        print(
            f"# exact minimization: {before} -> {graph.edge_count} edges"
        )
    _print_graph(graph, args, name=log.process_name or "mined")
    verified = args.no_verify or _verify_mined(
        result, log, args.threshold, recorder
    )
    _write_metrics(
        args,
        recorder,
        command="mine",
        input_path=args.log,
        config={
            "algorithm": args.algorithm,
            "resolved_algorithm": result.algorithm,
            "threshold": args.threshold,
            "on_error": args.on_error,
            "jobs": args.jobs or 0,
            "exact_minimize": bool(
                getattr(args, "exact_minimize", False)
            ),
        },
    )
    if not verified:
        return 2
    return 3 if result_ingest.report.dropped else 0


def _print_profile(trace) -> None:
    """Emit ``--profile`` throughput diagnostics to stderr.

    Algorithm 1 has no staged trace, so an empty trace prints only the
    header line.
    """
    print("profile:", file=sys.stderr)
    if trace.execution_count:
        print(
            f"  executions: {trace.execution_count}  "
            f"variants: {trace.variant_count}  "
            f"dedup ratio: {trace.dedup_ratio():.2f}x",
            file=sys.stderr,
        )
        paths = getattr(trace, "reduction_paths", None) or {}
        by_path = ", ".join(
            f"{count} {path}" for path, count in sorted(paths.items())
        )
        print(
            f"  step-5 reductions: {trace.reduction_cache_misses} "
            f"computed"
            + (f" ({by_path})" if by_path else "")
            + f", {trace.reduction_cache_hits} exact cache hits, "
            f"{trace.reduction_cache_prefix_extends} prefix extends",
            file=sys.stderr,
        )
        print(
            f"  kernel: {trace.kernel}  jobs: {trace.jobs}",
            file=sys.stderr,
        )
    # Sub-spans (e.g. prepare's parse/intern/pairs split) live on the
    # recorder, keyed under the parent stage's mine/<stage>/ prefix.
    sub_spans: Dict[str, List[Tuple[str, float]]] = {}
    for span in getattr(trace.recorder, "spans", ()):
        parts = span.name.split("/")
        if len(parts) == 3 and parts[0] == "mine":
            sub_spans.setdefault(parts[1], []).append(
                (parts[2], span.wall_seconds)
            )
    for stage, seconds in trace.timings.items():
        print(f"  {stage}: {seconds * 1000:.1f} ms", file=sys.stderr)
        for name, wall in sub_spans.get(stage, ()):
            print(
                f"    {stage}/{name}: {wall * 1000:.1f} ms",
                file=sys.stderr,
            )


def _verify_mined(
    result,
    log,
    threshold: int,
    recorder=NULL_RECORDER,
    process_name: Optional[str] = None,
) -> bool:
    """Run the error-level lint rules over the mined model.

    Returns True when the model is free of error-severity diagnostics;
    otherwise the findings go to stderr.  A correctly mined model is
    always clean, so a failure here points at a miner bug or a
    pathological log, not at user error.

    Under ``--stream`` the log was never materialized, so ``log`` is
    None (``process_name`` names the model instead) and the PM3xx
    log-vs-model rules are skipped — only the structural rules run.

    Graphs that cannot even be packaged as a process model (e.g. the
    cyclic algorithm mined ambiguous endpoints) skip verification with
    a stderr note — the packaging error is the diagnosis, and
    ``mine``'s output contract predates verification.
    """
    if log is not None:
        process_name = log.process_name
    try:
        model = result.to_process_model(name=process_name or "mined")
    except ReproError as exc:
        print(f"verification: skipped ({exc})", file=sys.stderr)
        return True
    # PM108's minimal-conformal exemption (an implied edge is fine when
    # some execution requires it directly) needs per-execution coverage,
    # so without the log it would flag every such edge a correct miner
    # legitimately keeps.
    ignore = ["PM108"] if log is None else None
    report = lint_model(
        model,
        log=log,
        config=LintConfig(
            noise_threshold=max(threshold, 0), ignore=ignore
        ),
        recorder=recorder,
    )
    errors = report.at_least(Severity.ERROR)
    if not errors:
        return True
    print(
        "verification: mined model failed error-level lint checks "
        "(rerun with --no-verify to emit it anyway):",
        file=sys.stderr,
    )
    for diagnostic in errors:
        print(f"  {diagnostic.render()}", file=sys.stderr)
    return False


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "synthetic":
        dataset = synthetic_dataset(
            SyntheticConfig(
                n_vertices=args.vertices,
                n_executions=args.executions,
                seed=args.seed,
            )
        )
        log = dataset.log
    else:
        log = flowmark_dataset(
            args.kind, executions=args.executions, seed=args.seed
        ).log
    lines = write_log_file(log, args.output)
    print(
        f"wrote {len(log)} executions ({lines} records) to {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    log = read_log_file(args.log)
    print(f"process: {log.process_name or '?'}")
    print(format_statistics(summarize_log(log)))
    return 0


def _cmd_conditions(args: argparse.Namespace) -> int:
    log = read_log_file(args.log)
    miner = ProcessMiner(
        threshold=args.threshold, learn_conditions=True
    )
    result = miner.mine(log)
    print(f"# algorithm: {result.algorithm}")
    for edge in sorted(result.conditions):
        print(result.conditions[edge].describe())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    simulator = WorkflowSimulator(
        model, SimulationConfig(agents=args.agents, seed=args.seed)
    )
    log = simulator.run_log(args.executions)
    lines = write_log_file(log, args.output)
    print(
        f"simulated {len(log)} executions of {model.name!r} "
        f"({lines} records) to {args.output}"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    log = read_log_file(args.log)
    diff = diff_against_log(model, log, threshold=args.threshold)
    print(f"# purported model: {model.name} ({args.model})")
    print(f"# log: {args.log} ({len(log)} executions)")
    print(diff.report())
    return 0 if diff.is_clean else 2


def _cmd_evolve(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    log = read_log_file(args.log)
    result = evolve_model(
        model,
        log,
        threshold=args.threshold,
        prune_unobserved=args.prune_unobserved,
        learn_conditions=args.learn_conditions,
    )
    print(result.summary())
    if args.output:
        save_model(result.model, args.output)
        print(f"wrote evolved model to {args.output}")
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    log = read_log_file(args.log)
    print(f"process: {log.process_name or '?'}")
    print(format_timing_report(log))
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from repro.analysis.coverage import edge_coverage

    model = load_model(args.model)
    log = read_log_file(args.log)
    report = edge_coverage(model.graph, log)
    print(f"# model: {model.name} ({args.model})")
    print(f"# log: {args.log}")
    print(report.report())
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    from repro.logs.filters import format_variants

    log = read_log_file(args.log)
    print(f"process: {log.process_name or '?'}")
    print(format_variants(log, top=args.top))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.logs.jsonl import read_log_jsonl_file, write_log_jsonl_file

    def is_jsonl(path: str) -> bool:
        return path.endswith(".jsonl")

    log = (
        read_log_jsonl_file(args.input)
        if is_jsonl(args.input)
        else read_log_file(args.input)
    )
    if is_jsonl(args.output):
        lines = write_log_jsonl_file(log, args.output)
    else:
        lines = write_log_file(log, args.output)
    print(
        f"converted {len(log)} executions ({lines} records) "
        f"to {args.output}"
    )
    return 0


def _parse_code_list(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    return [code for code in text.split(",") if code.strip()]


def _parse_severity_overrides(pairs: List[str]):
    mapping = {}
    for pair in pairs:
        code, separator, level = pair.partition("=")
        if not separator or not code.strip() or not level.strip():
            raise ReproError(
                f"bad --severity {pair!r}; expected CODE=LEVEL, "
                f"e.g. PM301=error"
            )
        mapping[code] = level
    try:
        return severity_overrides(mapping)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc


def _cmd_lint(args: argparse.Namespace) -> int:
    recorder = _metrics_recorder(args)
    with recorder.span("load_model"):
        model = load_model(args.model)
    log = read_log_file(args.log) if args.log else None
    config = LintConfig(
        select=_parse_code_list(args.select),
        ignore=_parse_code_list(args.ignore),
        severity_overrides=_parse_severity_overrides(args.severity),
        dag_mode=args.require_acyclic,
        noise_threshold=max(args.threshold, 0),
    )
    report = lint_model(model, log=log, config=config, recorder=recorder)
    with open(args.model, "r", encoding="utf-8") as handle:
        report = report.with_lines(model_line_map(handle.read()))
    print(render(report, args.format, artifact=args.model))
    _write_metrics(
        args,
        recorder,
        command="lint",
        input_path=args.model,
        config={
            "dag_mode": args.require_acyclic,
            "noise_threshold": max(args.threshold, 0),
            "format": args.format,
            "with_log": bool(args.log),
        },
    )
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the multi-tenant mining daemon until SIGTERM."""
    from pathlib import Path

    from repro.resilience.session import DEFAULT_CHECKPOINT_EVERY
    from repro.service.registry import TenantConfig
    from repro.service.server import ServiceConfig, serve

    failed = _require_writable_metrics_out(args)
    if failed is not None:
        return failed
    limits = IngestLimits(
        max_executions=args.limit_executions,
        max_events_per_execution=args.limit_events_per_execution,
        max_activities=args.limit_activities,
    )
    tenant = TenantConfig(
        policy=args.on_error,
        algorithm=args.algorithm,
        threshold=args.threshold,
        window=args.stream_window or DEFAULT_STREAM_WINDOW,
        checkpoint_every=(
            args.checkpoint_every
            if args.checkpoint_every is not None
            else DEFAULT_CHECKPOINT_EVERY
        ),
        snapshot_every=args.snapshot_every,
        kernel=args.kernel,
        limits=limits,
    )
    config = ServiceConfig(
        data_dir=Path(args.data_dir),
        host=args.host,
        port=args.port,
        tenant=tenant,
        queue_limit=args.queue_limit,
        max_tenants=args.max_tenants,
        idle_flush_seconds=args.idle_flush_seconds,
        port_file=Path(args.port_file) if args.port_file else None,
    )
    # The daemon always records: GET /metrics serves this recorder's
    # registry; --metrics-out additionally snapshots it at shutdown.
    recorder = ObsRecorder()
    with recorder.span("serve", data_dir=args.data_dir):
        status = serve(config, recorder=recorder)
    if args.metrics_out:
        _write_metrics(
            args,
            recorder,
            command="serve",
            input_path=args.data_dir,
            config={
                "algorithm": args.algorithm,
                "threshold": args.threshold,
                "on_error": args.on_error,
                "queue_limit": args.queue_limit,
            },
        )
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
