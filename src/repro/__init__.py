"""repro — a reproduction of *Mining Process Models from Workflow Logs*.

Agrawal, Gunopulos, Leymann (EDBT 1998).  The package mines process model
graphs (and Boolean edge conditions) from workflow execution logs, and
ships every substrate the paper's evaluation needs: a directed-graph
library, a process-model definition language, a Flowmark-style workflow
simulator, synthetic and simulated-Flowmark dataset generators, a decision
tree learner, and evaluation metrics.

Quickstart
----------
>>> from repro import EventLog, ProcessMiner
>>> log = EventLog.from_sequences(["ABCDE", "ACDBE", "ACBDE"])
>>> result = ProcessMiner().mine(log)   # Example 6 -> Figure 3
>>> sorted(result.graph.edges())
[('A', 'B'), ('A', 'C'), ('B', 'E'), ('C', 'D'), ('D', 'E')]

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core.conditions import ConditionsMiner, MinedCondition
from repro.core.conformance import (
    ConformanceReport,
    check_conformance,
    is_consistent,
)
from repro.core.cyclic import mine_cyclic
from repro.core.dependency import DependencyRelation, dependency_relation
from repro.core.followings import FollowRelation, follow_relation
from repro.analysis.diffing import ModelLogDiff, diff_against_log
from repro.core.general_dag import MiningTrace, mine_general_dag
from repro.core.incremental import IncrementalMiner
from repro.core.miner import MiningResult, ProcessMiner
from repro.core.noise import optimal_threshold, threshold_error_probability
from repro.core.special_dag import mine_special_dag
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.errors import ReproError
from repro.graphs.compare import EdgeComparison, compare_edges
from repro.graphs.digraph import DiGraph
from repro.logs.codec import ingest_log_file, read_log_file, write_log_file
from repro.logs.event_log import EventLog
from repro.logs.ingest import (
    IngestLimits,
    IngestReport,
    IngestResult,
    Quarantine,
)
from repro.logs.events import EventRecord
from repro.logs.execution import Execution
from repro.logs.noise import NoiseConfig, NoiseInjector
from repro.model.builder import ProcessBuilder
from repro.model.evolution import EvolutionResult, evolve_model
from repro.model.process import ProcessModel
from repro.model.serialize import load_model, save_model

__version__ = "1.0.0"

__all__ = [
    "ConditionsMiner",
    "ConformanceReport",
    "DependencyRelation",
    "DiGraph",
    "EdgeComparison",
    "EventLog",
    "EventRecord",
    "EvolutionResult",
    "Execution",
    "FollowRelation",
    "IncrementalMiner",
    "IngestLimits",
    "IngestReport",
    "IngestResult",
    "MinedCondition",
    "MiningResult",
    "MiningTrace",
    "ModelLogDiff",
    "NoiseConfig",
    "NoiseInjector",
    "ProcessBuilder",
    "ProcessMiner",
    "ProcessModel",
    "Quarantine",
    "ReproError",
    "SimulationConfig",
    "WorkflowSimulator",
    "__version__",
    "check_conformance",
    "compare_edges",
    "dependency_relation",
    "diff_against_log",
    "evolve_model",
    "follow_relation",
    "ingest_log_file",
    "is_consistent",
    "load_model",
    "mine_cyclic",
    "mine_general_dag",
    "mine_special_dag",
    "optimal_threshold",
    "read_log_file",
    "save_model",
    "threshold_error_probability",
    "write_log_file",
]
