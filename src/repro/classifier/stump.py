"""A one-rule (decision stump) classifier — the simplest [WK91] learner.

Section 7 only requires "a classifier"; Weiss & Kulikowski's book (the
paper's citation) treats one-level rules as the baseline every richer
model must beat.  :class:`DecisionStump` learns the single best test
``features[i] <= t`` (possibly inverted) and serves as the comparison
point for the decision tree in ``bench_condition_learners.py``: stumps
match the tree on single-threshold edge conditions and lose on
conjunctive ones (Example 1's ``o[0] > 0 and o[1] < o[0]`` shape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.classifier.dataset import Dataset
from repro.classifier.splits import best_split, entropy
from repro.errors import TrainingDataError
from repro.model.conditions import (
    Always,
    Comparison,
    Condition,
    Never,
)


@dataclass(frozen=True)
class DecisionStump:
    """A single-test classifier: ``features[feature] <= threshold``.

    Attributes
    ----------
    feature, threshold:
        The learned test; ``None`` for a constant stump.
    label_when_true:
        Predicted label when the test holds (its negation otherwise).
    constant:
        For unsplittable data, the majority label; the test is unused.
    """

    feature: Optional[int]
    threshold: Optional[float]
    label_when_true: bool
    constant: Optional[bool] = None

    @classmethod
    def fit(cls, dataset: Dataset) -> "DecisionStump":
        """Learn the best single split of ``dataset``.

        Falls back to a constant majority stump when no split helps.
        """
        if len(dataset) == 0:
            raise TrainingDataError(
                "cannot fit a stump on an empty dataset"
            )
        split = best_split(dataset, impurity=entropy)
        if split is None:
            return cls(
                feature=None,
                threshold=None,
                label_when_true=dataset.majority_label,
                constant=dataset.majority_label,
            )
        left, right = dataset.split(split.feature, split.threshold)
        return cls(
            feature=split.feature,
            threshold=split.threshold,
            label_when_true=left.majority_label,
        )

    def predict(self, features: Sequence[float]) -> bool:
        """Classify one feature vector."""
        if self.constant is not None:
            return self.constant
        assert self.feature is not None and self.threshold is not None
        if features[self.feature] <= self.threshold:
            return self.label_when_true
        return not self.label_when_true

    def accuracy(self, dataset: Dataset) -> float:
        """Fraction of ``dataset`` classified correctly."""
        if len(dataset) == 0:
            return 1.0
        hits = sum(
            1
            for example in dataset
            if self.predict(example.features) == example.label
        )
        return hits / len(dataset)

    def to_condition(self) -> Condition:
        """Express the stump in the edge-condition AST."""
        if self.constant is not None:
            return Always() if self.constant else Never()
        assert self.feature is not None and self.threshold is not None
        test = Comparison(self.feature, "<=", self.threshold)
        if self.label_when_true:
            return test
        return Comparison(self.feature, ">", self.threshold)
