"""Labelled training sets for the conditions learner.

Section 7 defines the training set of an edge ``(u, v)``: for each
execution where ``u`` appears, a point ``(o(u), 1)`` if ``v`` also appears
and ``(o(u), 0)`` otherwise.  :class:`Dataset` is the generic container the
tree trains on; the edge-specific construction lives in
:mod:`repro.core.conditions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import TrainingDataError


@dataclass(frozen=True)
class LabelledExample:
    """One training point: a feature vector and a Boolean label."""

    features: Tuple[float, ...]
    label: bool


class Dataset:
    """An immutable set of labelled examples with uniform arity.

    Parameters
    ----------
    examples:
        The labelled points.  All feature vectors must share one length.

    Raises
    ------
    TrainingDataError
        On mixed arities.
    """

    def __init__(self, examples: Iterable[LabelledExample]) -> None:
        self._examples: List[LabelledExample] = list(examples)
        arities = {len(e.features) for e in self._examples}
        if len(arities) > 1:
            raise TrainingDataError(
                f"feature vectors have mixed arities {sorted(arities)}"
            )
        self._arity = arities.pop() if arities else 0

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[Sequence[float], bool]]
    ) -> "Dataset":
        """Build from ``(features, label)`` tuples."""
        return cls(
            LabelledExample(tuple(float(x) for x in f), bool(label))
            for f, label in pairs
        )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._examples)

    def __iter__(self) -> Iterator[LabelledExample]:
        return iter(self._examples)

    def __getitem__(self, index: int) -> LabelledExample:
        return self._examples[index]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of features per example (0 for an empty dataset)."""
        return self._arity

    @property
    def positives(self) -> int:
        """Number of positively labelled examples."""
        return sum(1 for e in self._examples if e.label)

    @property
    def negatives(self) -> int:
        """Number of negatively labelled examples."""
        return len(self._examples) - self.positives

    @property
    def is_pure(self) -> bool:
        """Whether all labels agree (or the dataset is empty)."""
        return self.positives == 0 or self.negatives == 0

    @property
    def majority_label(self) -> bool:
        """The majority label; ties and empty datasets default to True
        (an unconditional edge is the safer default for control flow)."""
        return self.positives >= self.negatives

    def positive_fraction(self) -> float:
        """Fraction of positive examples (0.0 for an empty dataset)."""
        return self.positives / len(self._examples) if self._examples else 0.0

    def split(
        self, feature: int, threshold: float
    ) -> Tuple["Dataset", "Dataset"]:
        """Partition on ``features[feature] <= threshold``.

        Returns ``(left, right)`` with the left side satisfying the test.
        """
        left = [e for e in self._examples if e.features[feature] <= threshold]
        right = [e for e in self._examples if e.features[feature] > threshold]
        return Dataset(left), Dataset(right)

    def feature_values(self, feature: int) -> List[float]:
        """Sorted distinct values of one feature."""
        return sorted({e.features[feature] for e in self._examples})
