"""From-scratch decision-tree classifier for conditions mining.

Section 7 learns each edge's Boolean function with "a classifier [WK91] …
in particular, the use of a decision tree classifier will give a set of
simple rules".  This subpackage provides exactly that, with no external ML
dependency:

* :mod:`repro.classifier.dataset` — labelled training sets over output
  vectors;
* :mod:`repro.classifier.splits` — impurity measures and best-split search;
* :mod:`repro.classifier.tree` — the CART-style binary tree;
* :mod:`repro.classifier.rules` — extraction of the tree's positive paths
  as :class:`~repro.model.conditions.Condition` expressions, closing the
  loop back into the process model.
"""

from repro.classifier.dataset import Dataset, LabelledExample
from repro.classifier.rules import rules_to_condition, tree_to_rules
from repro.classifier.splits import best_split, entropy, gini
from repro.classifier.stump import DecisionStump
from repro.classifier.tree import DecisionTree, TreeConfig

__all__ = [
    "Dataset",
    "DecisionStump",
    "DecisionTree",
    "LabelledExample",
    "TreeConfig",
    "best_split",
    "entropy",
    "gini",
    "rules_to_condition",
    "tree_to_rules",
]
