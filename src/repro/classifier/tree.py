"""A CART-style binary decision tree for Boolean targets.

The tree greedily splits on the best axis-aligned test until a stopping
criterion fires (purity, depth, minimum node size, or no gain), then
optionally prunes leaves whose merge does not hurt training accuracy
(reduced-error style, against the training set — adequate for the paper's
noise-free conditions and keeps the rules "simple" as Section 7 wants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.classifier.dataset import Dataset
from repro.classifier.splits import IMPURITY_FUNCTIONS, best_split
from repro.errors import TrainingDataError


@dataclass(frozen=True)
class TreeConfig:
    """Hyper-parameters for :class:`DecisionTree`.

    Attributes
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_leaf:
        Minimum examples per leaf.
    impurity:
        ``"entropy"`` or ``"gini"``.
    prune:
        Whether to collapse subtrees that do not improve training
        accuracy.
    """

    max_depth: int = 8
    min_leaf: int = 1
    impurity: str = "entropy"
    prune: bool = True

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if self.min_leaf < 1:
            raise ValueError("min_leaf must be >= 1")
        if self.impurity not in IMPURITY_FUNCTIONS:
            raise ValueError(
                f"impurity must be one of {sorted(IMPURITY_FUNCTIONS)}"
            )


@dataclass
class TreeNode:
    """One node: either a leaf (``label`` set) or a split."""

    label: Optional[bool] = None
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None    # features[feature] <= threshold
    right: Optional["TreeNode"] = None   # features[feature] >  threshold
    positives: int = 0
    negatives: int = 0

    @property
    def is_leaf(self) -> bool:
        """Whether the node is a leaf."""
        return self.label is not None

    @property
    def majority(self) -> bool:
        """Majority label at the node (ties favour True)."""
        return self.positives >= self.negatives


class DecisionTree:
    """A trained decision tree.

    Examples
    --------
    >>> from repro.classifier.dataset import Dataset
    >>> data = Dataset.from_pairs(
    ...     [((x, 0.0), x > 10) for x in range(21)]
    ... )
    >>> tree = DecisionTree.fit(data)
    >>> tree.predict((15.0, 0.0)), tree.predict((3.0, 0.0))
    (True, False)
    """

    def __init__(self, root: TreeNode, config: TreeConfig) -> None:
        self.root = root
        self.config = config

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls, dataset: Dataset, config: Optional[TreeConfig] = None
    ) -> "DecisionTree":
        """Train a tree on ``dataset``.

        Raises
        ------
        TrainingDataError
            On an empty dataset.
        """
        if len(dataset) == 0:
            raise TrainingDataError("cannot fit a tree on an empty dataset")
        config = config or TreeConfig()
        impurity = IMPURITY_FUNCTIONS[config.impurity]

        def grow(data: Dataset, depth: int) -> TreeNode:
            node = TreeNode(
                positives=data.positives, negatives=data.negatives
            )
            if data.is_pure or depth >= config.max_depth:
                node.label = data.majority_label
                return node
            split = best_split(
                data, impurity=impurity, min_leaf=config.min_leaf
            )
            if split is None:
                node.label = data.majority_label
                return node
            left_data, right_data = data.split(split.feature, split.threshold)
            node.feature = split.feature
            node.threshold = split.threshold
            node.left = grow(left_data, depth + 1)
            node.right = grow(right_data, depth + 1)
            return node

        root = grow(dataset, 0)
        tree = cls(root, config)
        if config.prune:
            tree._prune(tree.root)
        return tree

    def _prune(self, node: TreeNode) -> None:
        """Collapse splits whose children agree or add no accuracy."""
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        self._prune(node.left)
        self._prune(node.right)
        if not (node.left.is_leaf and node.right.is_leaf):
            return
        if node.left.label == node.right.label:
            node.label = node.left.label
            node.feature = node.threshold = None
            node.left = node.right = None
            return
        # Merge when the majority leaf explains the split's examples at
        # least as well as the split does.
        split_errors = (
            min(node.left.positives, node.left.negatives)
            + min(node.right.positives, node.right.negatives)
        )
        merged_errors = min(node.positives, node.negatives)
        if merged_errors <= split_errors:
            node.label = node.majority
            node.feature = node.threshold = None
            node.left = node.right = None

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, features: Sequence[float]) -> bool:
        """Classify one feature vector."""
        node = self.root
        while not node.is_leaf:
            assert node.feature is not None and node.threshold is not None
            if features[node.feature] <= node.threshold:
                node = node.left  # type: ignore[assignment]
            else:
                node = node.right  # type: ignore[assignment]
        return bool(node.label)

    def accuracy(self, dataset: Dataset) -> float:
        """Fraction of ``dataset`` the tree classifies correctly."""
        if len(dataset) == 0:
            return 1.0
        hits = sum(
            1
            for example in dataset
            if self.predict(example.features) == example.label
        )
        return hits / len(dataset)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Depth of the tree (a lone leaf has depth 0)."""

        def measure(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(measure(node.left), measure(node.right))

        return measure(self.root)

    @property
    def leaf_count(self) -> int:
        """Number of leaves."""

        def count(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self.root)

    def __repr__(self) -> str:
        return (
            f"DecisionTree(depth={self.depth}, leaves={self.leaf_count})"
        )
