"""Rule extraction: decision tree → Boolean condition expression.

Section 7: "the use of a decision tree classifier will give a set of
simple rules that classify when a given activity is taken or not".  Each
root-to-positive-leaf path is one conjunctive rule; the edge's mined
condition is the disjunction of those rules, expressed in the
:mod:`repro.model.conditions` AST so it can be attached straight back onto
a mined :class:`~repro.model.process.ProcessModel`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.classifier.tree import DecisionTree, TreeNode
from repro.model.conditions import (
    Always,
    Comparison,
    Condition,
    Never,
)

#: One conjunct: (feature index, "<=" or ">", threshold).
Term = Tuple[int, str, float]
#: One rule: a conjunction of terms leading to a positive leaf.
Rule = Tuple[Term, ...]


def tree_to_rules(tree: DecisionTree) -> List[Rule]:
    """Extract the positive root-to-leaf paths of ``tree`` as rules.

    An empty term tuple means the rule is unconditionally true (the root
    itself is a positive leaf).  An empty *list* means the tree never
    predicts true.
    """
    rules: List[Rule] = []

    def walk(node: TreeNode, terms: List[Term]) -> None:
        if node.is_leaf:
            if node.label:
                rules.append(tuple(terms))
            return
        assert node.feature is not None and node.threshold is not None
        walk(node.left, terms + [(node.feature, "<=", node.threshold)])
        walk(node.right, terms + [(node.feature, ">", node.threshold)])

    walk(tree.root, [])
    return rules


def rule_to_condition(rule: Rule) -> Condition:
    """Convert one conjunctive rule into a condition expression."""
    if not rule:
        return Always()
    condition: Condition = _term_to_comparison(rule[0])
    for term in rule[1:]:
        condition = condition & _term_to_comparison(term)
    return condition


def rules_to_condition(rules: List[Rule]) -> Condition:
    """Convert a rule set into one condition (disjunction of rules)."""
    if not rules:
        return Never()
    if any(not rule for rule in rules):
        return Always()
    condition = rule_to_condition(rules[0])
    for rule in rules[1:]:
        condition = condition | rule_to_condition(rule)
    return condition


def format_rules(rules: List[Rule]) -> str:
    """Render a rule set as readable text (one rule per line)."""
    if not rules:
        return "never"
    lines = []
    for rule in rules:
        if not rule:
            lines.append("always")
            continue
        lines.append(
            " and ".join(
                f"o[{feature}] {op} {threshold:g}"
                for feature, op, threshold in rule
            )
        )
    return "\n".join(lines)


def _term_to_comparison(term: Term) -> Comparison:
    feature, op, threshold = term
    return Comparison(feature, op, threshold)
