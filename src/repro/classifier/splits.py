"""Impurity measures and best-split search for the decision tree.

Candidate splits are axis-aligned tests ``features[i] <= t`` with ``t`` the
midpoints between consecutive distinct values — the classic CART
enumeration, sufficient for the paper's integer output vectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.classifier.dataset import Dataset

ImpurityFn = Callable[[int, int], float]


def entropy(positives: int, negatives: int) -> float:
    """Shannon entropy of a two-class distribution, in bits."""
    total = positives + negatives
    if total == 0 or positives == 0 or negatives == 0:
        return 0.0
    p = positives / total
    q = negatives / total
    return -(p * math.log2(p) + q * math.log2(q))


def gini(positives: int, negatives: int) -> float:
    """Gini impurity of a two-class distribution."""
    total = positives + negatives
    if total == 0:
        return 0.0
    p = positives / total
    return 2.0 * p * (1.0 - p)


IMPURITY_FUNCTIONS = {"entropy": entropy, "gini": gini}


@dataclass(frozen=True)
class Split:
    """A chosen split: test ``features[feature] <= threshold``.

    ``gain`` is the impurity decrease the split achieves on its dataset.
    """

    feature: int
    threshold: float
    gain: float


def impurity_of(dataset: Dataset, impurity: ImpurityFn) -> float:
    """Impurity of a dataset under the given measure."""
    return impurity(dataset.positives, dataset.negatives)


def best_split(
    dataset: Dataset,
    impurity: ImpurityFn = entropy,
    min_leaf: int = 1,
) -> Optional[Split]:
    """Find the impurity-minimizing axis-aligned split of ``dataset``.

    Returns ``None`` when no split has positive gain or every split would
    produce a child smaller than ``min_leaf``.

    The search is O(features × examples log examples): per feature, the
    examples are sorted once and class counts are swept incrementally.
    """
    total = len(dataset)
    if total < 2 * min_leaf or dataset.is_pure:
        return None
    parent_impurity = impurity_of(dataset, impurity)
    total_pos = dataset.positives

    best: Optional[Split] = None
    for feature in range(dataset.arity):
        ranked = sorted(
            dataset, key=lambda example, f=feature: example.features[f]
        )
        left_pos = 0
        for i in range(1, total):
            if ranked[i - 1].label:
                left_pos += 1
            value_prev = ranked[i - 1].features[feature]
            value_next = ranked[i].features[feature]
            if value_prev == value_next:
                continue
            left_count = i
            right_count = total - i
            if left_count < min_leaf or right_count < min_leaf:
                continue
            right_pos = total_pos - left_pos
            weighted = (
                left_count * impurity(left_pos, left_count - left_pos)
                + right_count * impurity(right_pos, right_count - right_pos)
            ) / total
            gain = parent_impurity - weighted
            if gain <= 1e-12:
                continue
            if best is None or gain > best.gain:
                threshold = (value_prev + value_next) / 2.0
                best = Split(feature=feature, threshold=threshold, gain=gain)
    return best
