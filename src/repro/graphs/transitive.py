"""Transitive closure and transitive reduction.

The reduction implements **Algorithm 4 (TR)** from the paper's appendix: for
a DAG, visit vertices in reverse topological order keeping a descendant set
per vertex; a successor that is also reachable through another successor is
redundant and is dropped.  For a DAG the transitive reduction is unique
(Aho, Garey & Ullman 1972), which is what gives Algorithm 1 its minimality
guarantee.

Descendant sets are represented as Python ``int`` bitmasks: union is a single
bignum OR, so the reduction runs fast even on the 100-vertex graphs of
Table 1.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.errors import CycleError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import topological_sort

Node = Hashable
Edge = Tuple[Node, Node]


def transitive_closure(graph: DiGraph) -> DiGraph:
    """Return the transitive closure of ``graph``.

    The closure contains the edge ``(u, v)`` whenever a directed path of
    length >= 1 from ``u`` to ``v`` exists in ``graph``.  Works for cyclic
    graphs as well (a vertex on a cycle gains a self-loop).
    """
    index: Dict[Node, int] = {n: i for i, n in enumerate(graph.nodes())}
    order = list(graph.nodes())
    n = len(order)
    # reach[i] is a bitmask of vertices reachable from vertex i.
    reach: List[int] = [0] * n
    try:
        topo = topological_sort(graph)
    except CycleError:
        topo = None

    if topo is not None:
        for node in reversed(topo):
            i = index[node]
            mask = 0
            for child in graph.successors(node):
                j = index[child]
                mask |= (1 << j) | reach[j]
            reach[i] = mask
    else:
        # Cyclic case: iterate to a fixed point (bounded by n rounds).
        for node in order:
            i = index[node]
            for child in graph.successors(node):
                reach[i] |= 1 << index[child]
        changed = True
        while changed:
            changed = False
            for node in order:
                i = index[node]
                mask = reach[i]
                new = mask
                remaining = mask
                while remaining:
                    j = (remaining & -remaining).bit_length() - 1
                    remaining &= remaining - 1
                    new |= reach[j]
                if new != mask:
                    reach[i] = new
                    changed = True

    closure = DiGraph(nodes=order)
    for node in order:
        i = index[node]
        mask = reach[i]
        while mask:
            j = (mask & -mask).bit_length() - 1
            mask &= mask - 1
            closure.add_edge(node, order[j])
    return closure


def descendant_masks(graph: DiGraph) -> Dict[Node, int]:
    """Return, for a DAG, a bitmask of each node's descendants.

    Bit positions follow the graph's node insertion order.  Raises
    :class:`CycleError` for cyclic graphs.
    """
    index: Dict[Node, int] = {n: i for i, n in enumerate(graph.nodes())}
    reach: Dict[Node, int] = {}
    for node in reversed(topological_sort(graph)):
        mask = 0
        for child in graph.successors(node):
            mask |= (1 << index[child]) | reach[child]
        reach[node] = mask
    return reach


def transitive_reduction(graph: DiGraph) -> DiGraph:
    """Return the transitive reduction of a DAG (paper's Algorithm 4).

    The reduction is the unique minimal subgraph with the same transitive
    closure.  An edge ``(u, v)`` survives iff no *other* path from ``u`` to
    ``v`` exists (Lemma 7 of the paper).

    Raises
    ------
    CycleError
        If ``graph`` has a directed cycle (the reduction of a cyclic graph
        is not unique; the paper's algorithms only ever reduce DAGs).
    """
    reduced = DiGraph(nodes=graph.nodes())
    for source, target in transitive_reduction_edges(graph):
        reduced.add_edge(source, target)
    return reduced


def transitive_reduction_edges(graph: DiGraph) -> Set[Edge]:
    """Return the edge set of the transitive reduction of a DAG.

    This is the work-horse used by Algorithm 2 step 5, which only needs to
    *mark* surviving edges rather than materialize a graph per execution.

    Implementation notes — Algorithm 4 of the paper, vertices visited in
    reverse topological order:

    1. ``desc(v)`` starts as the union of the descendants of ``v``'s
       successors.
    2. A successor of ``v`` contained in that union is reachable another
       way, hence redundant.
    3. The remaining successors are added to ``desc(v)``.
    """
    index: Dict[Node, int] = {n: i for i, n in enumerate(graph.nodes())}
    desc: Dict[Node, int] = {}
    kept: Set[Edge] = set()
    for node in reversed(topological_sort(graph)):
        successors = graph.successors(node)
        # Union of descendants reachable *through* a successor.
        through = 0
        for child in successors:
            through |= desc[child]
        mask = through
        for child in successors:
            bit = 1 << index[child]
            if not through & bit:
                kept.add((node, child))
            mask |= bit
        desc[node] = mask
    return kept


def is_transitively_reduced(graph: DiGraph) -> bool:
    """Return whether a DAG equals its own transitive reduction."""
    return graph.edge_set() == transitive_reduction_edges(graph)


def closure_equal(left: DiGraph, right: DiGraph) -> bool:
    """Return whether two graphs have identical transitive closures.

    Graphs over different node sets are never closure-equal.
    """
    if set(left.nodes()) != set(right.nodes()):
        return False
    return transitive_closure(left).edge_set() == transitive_closure(
        right
    ).edge_set()
