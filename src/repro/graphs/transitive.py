"""Transitive closure and transitive reduction.

The reduction implements **Algorithm 4 (TR)** from the paper's appendix: for
a DAG, visit vertices in reverse topological order keeping a descendant set
per vertex; a successor that is also reachable through another successor is
redundant and is dropped.  For a DAG the transitive reduction is unique
(Aho, Garey & Ullman 1972), which is what gives Algorithm 1 its minimality
guarantee.

Descendant sets are represented as Python ``int`` bitmasks: union is a single
bignum OR, so the reduction runs fast even on the 100-vertex graphs of
Table 1.
"""

from __future__ import annotations

from array import array
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import CycleError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import topological_sort

Node = Hashable
Edge = Tuple[Node, Node]


def _closure_rows(graph: DiGraph) -> Tuple[List[Node], List[int]]:
    """Reachability rows of ``graph`` as per-node ``int`` bitmasks.

    ``rows[i]`` has bit ``j`` set whenever a directed path of length >= 1
    leads from node ``i`` to node ``j`` (insertion-order indices).  Shared
    by :func:`transitive_closure` and :class:`ClosureBitset`.
    """
    index: Dict[Node, int] = {n: i for i, n in enumerate(graph.nodes())}
    order = list(graph.nodes())
    n = len(order)
    reach: List[int] = [0] * n
    try:
        topo = topological_sort(graph)
    except CycleError:
        topo = None

    if topo is not None:
        for node in reversed(topo):
            i = index[node]
            mask = 0
            for child in graph.successors(node):
                j = index[child]
                mask |= (1 << j) | reach[j]
            reach[i] = mask
    else:
        # Cyclic case: iterate to a fixed point (bounded by n rounds).
        for node in order:
            i = index[node]
            for child in graph.successors(node):
                reach[i] |= 1 << index[child]
        changed = True
        while changed:
            changed = False
            for node in order:
                i = index[node]
                mask = reach[i]
                new = mask
                remaining = mask
                while remaining:
                    j = (remaining & -remaining).bit_length() - 1
                    remaining &= remaining - 1
                    new |= reach[j]
                if new != mask:
                    reach[i] = new
                    changed = True
    return order, reach


class ClosureBitset:
    """Transitive closure as a packed reachability bitset.

    The rows of :func:`_closure_rows` are stored contiguously in an
    ``array('Q')`` of 64-bit limbs; :attr:`view` exposes them through a
    read-only :class:`memoryview`, so per-node descendant *sets* (and the
    quadratic closure :class:`~repro.graphs.digraph.DiGraph`) never have
    to be materialized.  ``followings``/``dependency``/``minimize`` query
    reachability through :meth:`has_edge`/:meth:`iter_edges` instead of
    building a closure graph per call — the Algorithm 4 descendant-set
    representation of the kernel layer (see ``repro.core.kernels``).
    """

    __slots__ = ("nodes", "_index", "_limbs", "_words", "view")

    def __init__(self, nodes: List[Node], rows: List[int]) -> None:
        self.nodes = nodes
        self._index: Dict[Node, int] = {
            node: i for i, node in enumerate(nodes)
        }
        # One row = ``words`` little-endian 64-bit limbs.
        words = max(1, (len(nodes) + 63) // 64)
        self._words = words
        limbs = array("Q", bytes(8 * words * max(1, len(nodes))))
        for i, row in enumerate(rows):
            base = i * words
            w = 0
            while row:
                limbs[base + w] = row & 0xFFFFFFFFFFFFFFFF
                row >>= 64
                w += 1
        self._limbs = limbs
        self.view = memoryview(limbs).toreadonly()

    def row_mask(self, node: Node) -> int:
        """Reachability row of ``node`` as an ``int`` bitmask."""
        i = self._index[node]
        w = self._words
        return int.from_bytes(
            self.view[i * w : (i + 1) * w].cast("B"), "little"
        )

    def has_edge(self, source: Node, target: Node) -> bool:
        """Whether a path of length >= 1 leads from source to target."""
        i = self._index.get(source)
        j = self._index.get(target)
        if i is None or j is None:
            return False
        limb = self._limbs[i * self._words + (j >> 6)]
        return bool((limb >> (j & 63)) & 1)

    def iter_edges(self) -> Iterator[Edge]:
        """Yield the closure's edges in node-insertion order."""
        nodes = self.nodes
        for i, source in enumerate(nodes):
            mask = int.from_bytes(
                self.view[i * self._words : (i + 1) * self._words].cast(
                    "B"
                ),
                "little",
            )
            while mask:
                j = (mask & -mask).bit_length() - 1
                mask &= mask - 1
                yield (source, nodes[j])

    def edge_set(self) -> Set[Edge]:
        """The closure's edge set."""
        return set(self.iter_edges())


def transitive_closure_bitset(graph: DiGraph) -> ClosureBitset:
    """Return the transitive closure of ``graph`` as a bitset.

    Same reachability semantics as :func:`transitive_closure` (cyclic
    graphs gain self-loops on cycle vertices) without materializing the
    quadratic closure graph.
    """
    order, reach = _closure_rows(graph)
    return ClosureBitset(order, reach)


def transitive_closure(graph: DiGraph) -> DiGraph:
    """Return the transitive closure of ``graph``.

    The closure contains the edge ``(u, v)`` whenever a directed path of
    length >= 1 from ``u`` to ``v`` exists in ``graph``.  Works for cyclic
    graphs as well (a vertex on a cycle gains a self-loop).  Callers that
    only query reachability should prefer
    :func:`transitive_closure_bitset`.
    """
    order, reach = _closure_rows(graph)
    index: Dict[Node, int] = {n: i for i, n in enumerate(order)}
    closure = DiGraph(nodes=order)
    for node in order:
        i = index[node]
        mask = reach[i]
        while mask:
            j = (mask & -mask).bit_length() - 1
            mask &= mask - 1
            closure.add_edge(node, order[j])
    return closure


def descendant_masks(graph: DiGraph) -> Dict[Node, int]:
    """Return, for a DAG, a bitmask of each node's descendants.

    Bit positions follow the graph's node insertion order.  Raises
    :class:`CycleError` for cyclic graphs.
    """
    index: Dict[Node, int] = {n: i for i, n in enumerate(graph.nodes())}
    reach: Dict[Node, int] = {}
    for node in reversed(topological_sort(graph)):
        mask = 0
        for child in graph.successors(node):
            mask |= (1 << index[child]) | reach[child]
        reach[node] = mask
    return reach


def transitive_reduction(graph: DiGraph) -> DiGraph:
    """Return the transitive reduction of a DAG (paper's Algorithm 4).

    The reduction is the unique minimal subgraph with the same transitive
    closure.  An edge ``(u, v)`` survives iff no *other* path from ``u`` to
    ``v`` exists (Lemma 7 of the paper).

    Raises
    ------
    CycleError
        If ``graph`` has a directed cycle (the reduction of a cyclic graph
        is not unique; the paper's algorithms only ever reduce DAGs).
    """
    reduced = DiGraph(nodes=graph.nodes())
    for source, target in transitive_reduction_edges(graph):
        reduced.add_edge(source, target)
    return reduced


def transitive_reduction_edges(graph: DiGraph) -> Set[Edge]:
    """Return the edge set of the transitive reduction of a DAG.

    This is the work-horse used by Algorithm 2 step 5, which only needs to
    *mark* surviving edges rather than materialize a graph per execution.
    The computation is delegated to :func:`transitive_reduction_packed`
    over dense integer vertex ids; isolated vertices cannot affect which
    edges survive, so only the edge set is packed.
    """
    nodes = list(graph.nodes())
    index: Dict[Node, int] = {n: i for i, n in enumerate(nodes)}
    n = len(nodes)
    codes = frozenset(
        index[source] * n + index[target]
        for source, target in graph.edges()
    )
    kept_codes = transitive_reduction_packed(codes, n)
    return {(nodes[code // n], nodes[code % n]) for code in kept_codes}


def transitive_reduction_packed(
    codes: FrozenSet[int],
    n: int,
    rank: Optional[Dict[int, int]] = None,
) -> FrozenSet[int]:
    """Transitive reduction over packed edges ``u * n + v``.

    The high-throughput miner (``repro.core.general_dag``) stores each
    trace variant's induced edge set as packed integers; reducing in that
    representation skips per-execution :class:`DiGraph` construction
    entirely.  Implementation — Algorithm 4 of the paper, vertices visited
    in reverse topological order:

    1. ``desc(v)`` starts as the union of the descendants of ``v``'s
       successors (one bignum OR per successor).
    2. A successor of ``v`` contained in that union is reachable another
       way, hence redundant.
    3. The remaining successors are added to ``desc(v)``.

    Parameters
    ----------
    codes:
        Packed edges.
    n:
        The packing modulus (vertex-id space size).
    rank:
        Optional precomputed topological ranks valid for a supergraph of
        ``codes`` (e.g. the full step-4 DAG when reducing its induced
        subgraphs): any edge ``(u, v)`` satisfies ``rank[u] < rank[v]``.
        When given, the per-call Kahn pass (and its cycle detection) is
        skipped — the caller vouches for acyclicity.

    Raises
    ------
    CycleError
        If the packed edges contain a directed cycle (only detected when
        ``rank`` is not supplied).
    """
    succ: Dict[int, List[int]] = {}
    if rank is not None:
        for code in codes:
            u, v = divmod(code, n)
            if u in succ:
                succ[u].append(v)
            else:
                succ[u] = [v]
        order = sorted(succ, key=rank.__getitem__, reverse=True)
        desc: Dict[int, int] = {}
        kept: Set[int] = set()
        for u in order:
            through = 0
            for v in succ[u]:
                through |= desc.get(v, 0)
            mask = through
            base = u * n
            for v in succ[u]:
                bit = 1 << v
                if not through & bit:
                    kept.add(base + v)
                mask |= bit
            desc[u] = mask
        return frozenset(kept)

    indegree: Dict[int, int] = {}
    for code in codes:
        u, v = divmod(code, n)
        succ.setdefault(u, []).append(v)
        indegree[v] = indegree.get(v, 0) + 1
        indegree.setdefault(u, 0)

    # Kahn's algorithm over the edge-bearing vertices only.
    ready = [u for u, degree in indegree.items() if degree == 0]
    topo: List[int] = []
    while ready:
        u = ready.pop()
        topo.append(u)
        for v in succ.get(u, ()):
            indegree[v] -= 1
            if indegree[v] == 0:
                ready.append(v)
    if len(topo) != len(indegree):
        raise CycleError(
            "graph has a directed cycle; its transitive reduction is "
            "not unique"
        )

    desc_full: Dict[int, int] = {}
    kept_full: Set[int] = set()
    for u in reversed(topo):
        successors = succ.get(u, ())
        through = 0
        for v in successors:
            through |= desc_full[v]
        mask = through
        for v in successors:
            bit = 1 << v
            if not through & bit:
                kept_full.add(u * n + v)
            mask |= bit
        desc_full[u] = mask
    return frozenset(kept_full)


def is_transitively_reduced(graph: DiGraph) -> bool:
    """Return whether a DAG equals its own transitive reduction."""
    return graph.edge_set() == transitive_reduction_edges(graph)


def closure_equal(left: DiGraph, right: DiGraph) -> bool:
    """Return whether two graphs have identical transitive closures.

    Graphs over different node sets are never closure-equal.
    """
    if set(left.nodes()) != set(right.nodes()):
        return False
    return transitive_closure(left).edge_set() == transitive_closure(
        right
    ).edge_set()
