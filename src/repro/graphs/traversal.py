"""Traversal primitives: DFS/BFS, topological sort, reachability, cycles.

All routines are iterative (no recursion) so they handle the 100-vertex ×
10,000-execution workloads of the paper's Table 1 without hitting Python's
recursion limit, and all return deterministic orders given the graph's node
insertion order.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, List, Optional, Set

from repro.errors import CycleError, NodeNotFoundError
from repro.graphs.digraph import DiGraph

Node = Hashable


def dfs_preorder(graph: DiGraph, start: Node) -> List[Node]:
    """Return nodes reachable from ``start`` in depth-first preorder."""
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    seen: Set[Node] = set()
    order: List[Node] = []
    stack: List[Node] = [start]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        # Reverse-sorted push gives a stable, human-predictable visit order.
        stack.extend(sorted(graph.successors(node), key=repr, reverse=True))
    return order


def dfs_postorder(graph: DiGraph, start: Node) -> List[Node]:
    """Return nodes reachable from ``start`` in depth-first postorder."""
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    seen: Set[Node] = set()
    order: List[Node] = []
    # Each stack frame carries the node and an iterator over its successors.
    stack = [(start, iter(sorted(graph.successors(start), key=repr)))]
    seen.add(start)
    while stack:
        node, children = stack[-1]
        advanced = False
        for child in children:
            if child not in seen:
                seen.add(child)
                stack.append(
                    (child, iter(sorted(graph.successors(child), key=repr)))
                )
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    return order


def bfs_order(graph: DiGraph, start: Node) -> List[Node]:
    """Return nodes reachable from ``start`` in breadth-first order."""
    if not graph.has_node(start):
        raise NodeNotFoundError(start)
    seen: Set[Node] = {start}
    order: List[Node] = []
    queue: deque = deque([start])
    while queue:
        node = queue.popleft()
        order.append(node)
        for child in sorted(graph.successors(node), key=repr):
            if child not in seen:
                seen.add(child)
                queue.append(child)
    return order


def descendants(graph: DiGraph, node: Node) -> Set[Node]:
    """Return all nodes reachable from ``node`` (excluding ``node`` itself,
    unless it lies on a cycle through itself)."""
    if not graph.has_node(node):
        raise NodeNotFoundError(node)
    seen: Set[Node] = set()
    stack = list(graph.successors(node))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.successors(current) - seen)
    return seen


def ancestors(graph: DiGraph, node: Node) -> Set[Node]:
    """Return all nodes from which ``node`` is reachable (excluding ``node``
    itself, unless it lies on a cycle through itself)."""
    if not graph.has_node(node):
        raise NodeNotFoundError(node)
    seen: Set[Node] = set()
    stack = list(graph.predecessors(node))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.predecessors(current) - seen)
    return seen


def has_path(graph: DiGraph, source: Node, target: Node) -> bool:
    """Return whether a directed path (length >= 1) from ``source`` to
    ``target`` exists.

    Note that ``has_path(g, v, v)`` is ``True`` only when ``v`` lies on a
    cycle, matching the paper's "following" relation where an activity does
    not trivially follow itself.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    return target in descendants(graph, source)


def topological_sort(graph: DiGraph) -> List[Node]:
    """Return a topological order of ``graph`` (Kahn's algorithm).

    Raises
    ------
    CycleError
        If the graph contains a directed cycle.  The error's ``cycle``
        attribute holds one offending cycle.
    """
    in_degree = {node: graph.in_degree(node) for node in graph.nodes()}
    ready = deque(node for node, degree in in_degree.items() if degree == 0)
    order: List[Node] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for child in graph.successors(node):
            in_degree[child] -= 1
            if in_degree[child] == 0:
                ready.append(child)
    if len(order) != graph.node_count:
        cycle = find_cycle(graph)
        raise CycleError("graph contains a cycle; no topological order", cycle)
    return order


def is_acyclic(graph: DiGraph) -> bool:
    """Return whether ``graph`` contains no directed cycle."""
    return find_cycle(graph) is None


def find_cycle(graph: DiGraph) -> Optional[List[Node]]:
    """Return one directed cycle as a node list, or ``None`` if acyclic.

    The returned list ``[v0, v1, ..., vk]`` satisfies ``v0 == vk`` and each
    consecutive pair is an edge.  Self-loops yield ``[v, v]``.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph.nodes()}
    parent: dict = {}
    for root in graph.nodes():
        if color[root] != WHITE:
            continue
        stack = [(root, iter(graph.successors(root)))]
        color[root] = GRAY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color.get(child, WHITE) == WHITE:
                    color[child] = GRAY
                    parent[child] = node
                    stack.append((child, iter(graph.successors(child))))
                    advanced = True
                    break
                if color.get(child) == GRAY:
                    # Found a back edge node -> child; unwind the cycle.
                    cycle = [child]
                    current = node
                    while current != child:
                        cycle.append(current)
                        current = parent[current]
                    cycle.append(child)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def reachable_from(graph: DiGraph, start: Node) -> Set[Node]:
    """Return ``start`` plus every node reachable from it."""
    result = descendants(graph, start)
    result.add(start)
    return result


def restrict_to_reachable(graph: DiGraph, start: Node) -> DiGraph:
    """Return the subgraph induced by nodes reachable from ``start``."""
    return graph.subgraph(reachable_from(graph, start))


def iter_paths(
    graph: DiGraph,
    source: Node,
    target: Node,
    max_paths: int = 10_000,
) -> Iterable[List[Node]]:
    """Yield simple paths from ``source`` to ``target``.

    Intended for tests and small diagnostic graphs; the number of simple
    paths can be exponential, so the ``max_paths`` guard raises
    :class:`ValueError` if exceeded.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    count = 0
    path: List[Node] = [source]
    on_path: Set[Node] = {source}
    stack = [iter(sorted(graph.successors(source), key=repr))]
    while stack:
        children = stack[-1]
        advanced = False
        for child in children:
            if child == target:
                count += 1
                if count > max_paths:
                    raise ValueError(
                        f"more than {max_paths} simple paths; aborting"
                    )
                yield path + [target]
                continue
            if child not in on_path:
                path.append(child)
                on_path.add(child)
                stack.append(iter(sorted(graph.successors(child), key=repr)))
                advanced = True
                break
        if not advanced:
            on_path.discard(path.pop() if len(path) > 0 else None)
            stack.pop()
