"""Random DAG generation for the synthetic evaluation (Section 8.1).

The paper evaluates on "random directed acyclic graph[s]" with a single
source (START) and a single sink (END).  The construction here follows the
standard layered recipe that yields such graphs:

1. Lay ``n`` interior activities out in a random topological order.
2. Add forward edges between order positions with a density parameter,
   keeping total edges near a target (the paper's Table 2 reports 24 edges
   at 10 vertices up to 4569 at 100, i.e. roughly ``n^1.9 / 4`` — dense
   graphs; the density knob reproduces that regime).
3. Splice in START (edges to all sources) and END (edges from all sinks) so
   the result has exactly one initiating and one terminating activity, per
   Section 2's model assumptions.

Generation is deterministic given the ``random.Random`` seed, which every
benchmark pins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.graphs.digraph import DiGraph

START = "START"
END = "END"


@dataclass(frozen=True)
class RandomDagConfig:
    """Parameters for :func:`random_dag`.

    Attributes
    ----------
    n_activities:
        Number of interior activities, *excluding* the START/END pair that
        is always added.  (The paper's "graph with 10 vertices" counts all
        vertices; use :func:`random_process_dag` to match that convention.)
    edge_probability:
        Probability of adding each candidate forward edge.  ``None`` selects
        the paper-calibrated density (see :func:`paper_edge_probability`).
    seed:
        Seed for the private :class:`random.Random` instance.
    activity_names:
        Optional explicit activity names; defaults to ``T01, T02, ...``.
    """

    n_activities: int
    edge_probability: Optional[float] = None
    seed: int = 0
    activity_names: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if self.n_activities < 1:
            raise ValueError("n_activities must be >= 1")
        if self.edge_probability is not None and not (
            0.0 <= self.edge_probability <= 1.0
        ):
            raise ValueError("edge_probability must be in [0, 1]")
        if (
            self.activity_names is not None
            and len(self.activity_names) != self.n_activities
        ):
            raise ValueError(
                "activity_names must have exactly n_activities entries"
            )


def paper_edge_probability(n_vertices: int) -> float:
    """Density giving edge counts in the regime of the paper's Table 2.

    Table 2 reports 24 edges at 10 vertices, 224 at 25, 1058 at 50 and 4569
    at 100 — very close to ``0.95 * n * (n - 1) / 2 * p`` with ``p ~ 0.5``
    at 10 shrinking slightly for large ``n``.  A constant ``p`` chosen as
    ``1.05 * target / C(n, 2)`` reproduces the same magnitudes.
    """
    if n_vertices < 2:
        return 0.0
    # Interpolated from Table 2's (vertices, edges) points.
    table = {10: 24, 25: 224, 50: 1058, 100: 4569}
    if n_vertices in table:
        target = table[n_vertices]
    else:
        # Table 2's counts track ~0.46 * C(n, 2).
        target = 0.46 * n_vertices * (n_vertices - 1) / 2.0
    pairs = n_vertices * (n_vertices - 1) / 2.0
    return min(1.0, target / pairs)


def default_activity_names(count: int) -> List[str]:
    """Return ``count`` zero-padded activity names (``T01``, ``T02``, ...)."""
    width = max(2, len(str(count)))
    return [f"T{i + 1:0{width}d}" for i in range(count)]


def random_dag(config: RandomDagConfig) -> DiGraph:
    """Generate a random single-source/single-sink process DAG.

    The returned graph contains ``config.n_activities`` interior vertices
    plus :data:`START` and :data:`END`.  Every interior vertex is reachable
    from START and reaches END.
    """
    rng = random.Random(config.seed)
    names = (
        list(config.activity_names)
        if config.activity_names is not None
        else default_activity_names(config.n_activities)
    )
    rng.shuffle(names)

    probability = config.edge_probability
    if probability is None:
        # Density is calibrated on the paper's convention of counting
        # START/END in the vertex total.
        probability = paper_edge_probability(config.n_activities + 2)

    graph = DiGraph(nodes=[START, *sorted(names), END])
    for i, source in enumerate(names):
        for target in names[i + 1:]:
            if rng.random() < probability:
                graph.add_edge(source, target)

    # Splice in START and END so the graph has one source and one sink.
    for name in names:
        if not any(p != START for p in graph.predecessors(name)):
            graph.add_edge(START, name)
        if not any(s != END for s in graph.successors(name)):
            graph.add_edge(name, END)
    if config.n_activities == 0:
        graph.add_edge(START, END)
    return graph


def random_process_dag(
    n_vertices: int,
    seed: int = 0,
    edge_probability: Optional[float] = None,
) -> DiGraph:
    """Generate a random DAG with ``n_vertices`` vertices *total*.

    This matches the paper's convention where "a graph with 10 vertices"
    includes the initiating and terminating activities.
    """
    if n_vertices < 2:
        raise ValueError("a process graph needs at least START and END")
    config = RandomDagConfig(
        n_activities=n_vertices - 2,
        edge_probability=edge_probability,
        seed=seed,
    )
    return random_dag(config)
