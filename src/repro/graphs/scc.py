"""Strongly connected components (Tarjan) and graph condensation.

Algorithm 2 step 4 of the paper removes every edge joining two vertices of
the same strongly connected component: vertices on a common cycle of
"followings" are mutually following and therefore *independent* by
Definition 4.  Tarjan's algorithm gives all components in one linear pass.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple

from repro.graphs.digraph import DiGraph

Node = Hashable


def strongly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """Return the strongly connected components of ``graph``.

    Implemented as an iterative Tarjan's algorithm.  Components are returned
    in reverse topological order of the condensation (a property of Tarjan's
    algorithm that :func:`condensation` relies on).

    Examples
    --------
    >>> g = DiGraph(edges=[("A", "B"), ("B", "A"), ("B", "C")])
    >>> sorted(sorted(c) for c in strongly_connected_components(g))
    [['A', 'B'], ['C']]
    """
    index_of: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[Set[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Iterative Tarjan: each frame is (node, iterator over successors).
        work = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph.successors(child))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def component_map(graph: DiGraph) -> Dict[Node, int]:
    """Return a mapping from each node to its component's index.

    Indices follow the order of :func:`strongly_connected_components`.
    """
    mapping: Dict[Node, int] = {}
    for index, component in enumerate(strongly_connected_components(graph)):
        for node in component:
            mapping[node] = index
    return mapping


def component_map_adjacency(
    adjacency: Dict[int, Sequence[int]],
) -> Dict[int, int]:
    """Component indices for an integer adjacency dict, without a DiGraph.

    ``adjacency`` maps each vertex id to its successors; vertices that
    appear only as targets are included automatically.  The hot mining
    path (``repro.core.kernels``) runs step 4 directly over interned
    adjacency lists, skipping per-edge :class:`DiGraph` construction.
    Component indices follow the same reverse-topological Tarjan order
    as :func:`component_map`.
    """
    nodes: Dict[int, None] = dict.fromkeys(adjacency)
    for targets in adjacency.values():
        for target in targets:
            if target not in nodes:
                nodes[target] = None
    empty: Tuple[int, ...] = ()
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    mapping: Dict[int, int] = {}
    counter = 0
    component_index = 0

    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(adjacency.get(root, empty)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append(
                        (child, iter(adjacency.get(child, empty)))
                    )
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    mapping[member] = component_index
                    if member == node:
                        break
                component_index += 1
    return mapping


def condensation(graph: DiGraph) -> Tuple[DiGraph, Dict[Node, int]]:
    """Return the condensation DAG and the node → component-index map.

    The condensation has one node per strongly connected component (the
    component's index) and an edge ``(i, j)`` whenever some edge of the
    original graph crosses from component ``i`` to component ``j``.  The
    result is always acyclic.
    """
    mapping = component_map(graph)
    dag = DiGraph(nodes=set(mapping.values()))
    for source, target in graph.edges():
        a, b = mapping[source], mapping[target]
        if a != b:
            dag.add_edge(a, b)
    return dag, mapping


def remove_intra_component_edges(graph: DiGraph) -> int:
    """Delete, in place, every edge inside a strongly connected component.

    This is exactly Algorithm 2 step 4 (and Algorithm 3 step 5) of the
    paper.  Self-loops are intra-component by definition and are removed too.

    Returns
    -------
    int
        The number of edges removed.
    """
    mapping = component_map(graph)
    doomed = [
        (source, target)
        for source, target in graph.edges()
        if mapping[source] == mapping[target]
    ]
    for source, target in doomed:
        graph.remove_edge(source, target)
    return len(doomed)
