"""Directed-graph substrate used throughout the reproduction.

The paper's algorithms are pure graph algorithms; this subpackage provides
the directed-graph data structure (:class:`DiGraph`) and every graph routine
the miners need, implemented from scratch:

* traversal helpers — DFS/BFS orders, topological sort, reachability
  (:mod:`repro.graphs.traversal`);
* Tarjan's strongly-connected-components algorithm (:mod:`repro.graphs.scc`);
* transitive closure and the paper's Appendix Algorithm 4 transitive
  reduction (:mod:`repro.graphs.transitive`);
* the random-DAG generator behind the synthetic evaluation
  (:mod:`repro.graphs.random_dag`);
* edge-set comparison metrics (:mod:`repro.graphs.compare`); and
* DOT / ASCII rendering (:mod:`repro.graphs.render`).
"""

from repro.graphs.compare import (
    VERDICT_DIVERGED,
    VERDICT_EQUIVALENT,
    VERDICT_EXACT,
    VERDICT_SUBGRAPH,
    VERDICT_SUPERGRAPH,
    EdgeComparison,
    compare_edges,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.random_dag import (
    END,
    START,
    RandomDagConfig,
    default_activity_names,
    paper_edge_probability,
    random_dag,
    random_process_dag,
)
from repro.graphs.render import edge_list_text, to_ascii, to_dot
from repro.graphs.scc import (
    component_map,
    condensation,
    remove_intra_component_edges,
    strongly_connected_components,
)
from repro.graphs.transitive import (
    closure_equal,
    descendant_masks,
    is_transitively_reduced,
    transitive_closure,
    transitive_reduction,
    transitive_reduction_edges,
)
from repro.graphs.traversal import (
    ancestors,
    bfs_order,
    descendants,
    dfs_postorder,
    dfs_preorder,
    find_cycle,
    has_path,
    is_acyclic,
    iter_paths,
    reachable_from,
    restrict_to_reachable,
    topological_sort,
)

__all__ = [
    "DiGraph",
    "EdgeComparison",
    "END",
    "RandomDagConfig",
    "START",
    "VERDICT_DIVERGED",
    "VERDICT_EQUIVALENT",
    "VERDICT_EXACT",
    "VERDICT_SUBGRAPH",
    "VERDICT_SUPERGRAPH",
    "ancestors",
    "bfs_order",
    "closure_equal",
    "compare_edges",
    "component_map",
    "condensation",
    "default_activity_names",
    "descendant_masks",
    "descendants",
    "dfs_postorder",
    "dfs_preorder",
    "edge_list_text",
    "find_cycle",
    "has_path",
    "is_acyclic",
    "is_transitively_reduced",
    "iter_paths",
    "paper_edge_probability",
    "random_dag",
    "random_process_dag",
    "reachable_from",
    "remove_intra_component_edges",
    "restrict_to_reachable",
    "strongly_connected_components",
    "to_ascii",
    "to_dot",
    "topological_sort",
    "transitive_closure",
    "transitive_reduction",
    "transitive_reduction_edges",
]
