"""Edge-set comparison between an original and a mined graph.

The paper checks its synthetic results "by programmatically comparing the
edge-set of the two graphs" (Section 8.1) and reports, in Table 2, the edge
counts of the original and mined graphs.  :func:`compare_edges` produces the
full confusion: shared edges, edges only in the original (missed), edges
only in the mined graph (extra), plus precision/recall/F1, and a verdict
string mirroring the paper's qualitative descriptions ("recovered exactly",
"supergraph", ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Tuple

from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import closure_equal

Node = Hashable
Edge = Tuple[Node, Node]

VERDICT_EXACT = "exact"
VERDICT_EQUIVALENT = "closure-equivalent"
VERDICT_SUPERGRAPH = "supergraph"
VERDICT_SUBGRAPH = "subgraph"
VERDICT_DIVERGED = "diverged"


@dataclass(frozen=True)
class EdgeComparison:
    """Result of comparing a mined graph against the ground truth.

    Attributes
    ----------
    shared:
        Edges present in both graphs.
    missed:
        Ground-truth edges the mined graph lacks.
    extra:
        Mined edges absent from the ground truth.
    verdict:
        One of the ``VERDICT_*`` strings; ``exact`` means identical edge
        sets, ``closure-equivalent`` means different edges but the same
        transitive closure (the same dependency structure — Lemma 2 of the
        paper says such graphs admit the same executions in the
        all-activities setting).
    """

    shared: FrozenSet[Edge]
    missed: FrozenSet[Edge]
    extra: FrozenSet[Edge]
    verdict: str = field(default=VERDICT_DIVERGED)

    @property
    def original_edge_count(self) -> int:
        """Number of edges in the ground-truth graph."""
        return len(self.shared) + len(self.missed)

    @property
    def mined_edge_count(self) -> int:
        """Number of edges in the mined graph."""
        return len(self.shared) + len(self.extra)

    @property
    def precision(self) -> float:
        """Fraction of mined edges that are real; 1.0 for an empty mine."""
        mined = self.mined_edge_count
        return len(self.shared) / mined if mined else 1.0

    @property
    def recall(self) -> float:
        """Fraction of real edges that were mined; 1.0 for empty truth."""
        original = self.original_edge_count
        return len(self.shared) / original if original else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def is_exact(self) -> bool:
        """Whether the edge sets are identical."""
        return not self.missed and not self.extra


def compare_edges(original: DiGraph, mined: DiGraph) -> EdgeComparison:
    """Compare ``mined`` against ``original`` edge-by-edge.

    Examples
    --------
    >>> truth = DiGraph(edges=[("A", "B"), ("B", "C")])
    >>> found = DiGraph(edges=[("A", "B"), ("A", "C")])
    >>> result = compare_edges(truth, found)
    >>> sorted(result.missed), sorted(result.extra)
    ([('B', 'C')], [('A', 'C')])
    """
    original_edges = original.edge_set()
    mined_edges = mined.edge_set()
    shared = frozenset(original_edges & mined_edges)
    missed = frozenset(original_edges - mined_edges)
    extra = frozenset(mined_edges - original_edges)
    verdict = _verdict(original, mined, missed, extra)
    return EdgeComparison(
        shared=shared, missed=missed, extra=extra, verdict=verdict
    )


def _verdict(
    original: DiGraph,
    mined: DiGraph,
    missed: FrozenSet[Edge],
    extra: FrozenSet[Edge],
) -> str:
    if not missed and not extra:
        return VERDICT_EXACT
    if closure_equal(original, mined):
        return VERDICT_EQUIVALENT
    if not missed:
        return VERDICT_SUPERGRAPH
    if not extra:
        return VERDICT_SUBGRAPH
    return VERDICT_DIVERGED
