"""A small, dependency-free directed graph.

:class:`DiGraph` stores adjacency as ``dict[node, set[node]]`` in both
directions so that successor and predecessor queries are O(1) per neighbour.
Nodes may be any hashable value; the miners use activity names (strings) and
``(activity, instance)`` tuples for Algorithm 3's relabelled logs.

The structure is deliberately minimal: it supports exactly the operations the
paper's algorithms need (edge insertion/removal, neighbour iteration, induced
subgraphs, copies) plus a few conveniences for tests and rendering.  Iteration
orders are deterministic (insertion order for nodes, sorted within neighbour
renderings) so that mined graphs print reproducibly.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

from repro.errors import DuplicateNodeError, NodeNotFoundError

Node = Hashable
Edge = Tuple[Node, Node]


class DiGraph:
    """A directed graph with O(1) amortised edge insertion and removal.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of ``(source, target)`` pairs.  Endpoints are
        added automatically.

    Examples
    --------
    >>> g = DiGraph(edges=[("A", "B"), ("B", "C")])
    >>> sorted(g.successors("A"))
    ['B']
    >>> g.has_edge("B", "C")
    True
    """

    __slots__ = ("_succ", "_pred")

    def __init__(
        self,
        nodes: Iterable[Node] | None = None,
        edges: Iterable[Edge] | None = None,
    ) -> None:
        # Insertion-ordered dicts double as ordered node sets.
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for source, target in edges:
                self.add_edge(source, target)

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present (idempotent)."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_new_node(self, node: Node) -> None:
        """Add ``node``, raising :class:`DuplicateNodeError` if present."""
        if node in self._succ:
            raise DuplicateNodeError(node)
        self.add_node(node)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        self._require(node)
        for target in self._succ.pop(node):
            self._pred[target].discard(node)
        for source in self._pred.pop(node):
            self._succ[source].discard(node)

    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._succ

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._succ)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, source: Node, target: Node) -> None:
        """Add the edge ``(source, target)``, creating endpoints as needed.

        Parallel edges are collapsed (the edge set is a set); self-loops are
        permitted because intermediate graphs in Algorithm 2 may briefly
        contain them.
        """
        self.add_node(source)
        self.add_node(target)
        self._succ[source].add(target)
        self._pred[target].add(source)

    def add_edges_bulk(
        self, source: Node, targets: Iterable[Node]
    ) -> None:
        """Add edges from ``source`` to every target in one call.

        Endpoints are created as needed, like :meth:`add_edge`, but the
        per-edge membership checks are amortized: the miners' step-6
        assembly inserts thousands of edges grouped by source.
        """
        targets = list(targets)
        self.add_node(source)
        succ = self._succ
        pred = self._pred
        missing = [t for t in targets if t not in succ]
        for target in missing:
            succ[target] = set()
            pred[target] = set()
        succ[source].update(targets)
        for target in targets:
            pred[target].add(source)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the edge ``(source, target)``; missing edges are ignored.

        Removal is tolerant because the miners prune candidate edge sets in
        bulk and pruning an already-pruned edge is not an error.
        """
        if source in self._succ:
            self._succ[source].discard(target)
        if target in self._pred:
            self._pred[target].discard(source)

    def has_edge(self, source: Node, target: Node) -> bool:
        """Return whether the edge ``(source, target)`` is present."""
        return source in self._succ and target in self._succ[source]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(source, target)`` pairs."""
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return sum(len(targets) for targets in self._succ.values())

    def edge_set(self) -> Set[Edge]:
        """Return all edges as a new set."""
        return set(self.edges())

    # ------------------------------------------------------------------
    # Neighbourhood queries
    # ------------------------------------------------------------------
    def successors(self, node: Node) -> Set[Node]:
        """Return the set of direct successors of ``node`` (a copy)."""
        self._require(node)
        return set(self._succ[node])

    def predecessors(self, node: Node) -> Set[Node]:
        """Return the set of direct predecessors of ``node`` (a copy)."""
        self._require(node)
        return set(self._pred[node])

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of ``node``."""
        self._require(node)
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of ``node``."""
        self._require(node)
        return len(self._pred[node])

    def sources(self) -> list:
        """Nodes with no incoming edges, in insertion order."""
        return [node for node in self._succ if not self._pred[node]]

    def sinks(self) -> list:
        """Nodes with no outgoing edges, in insertion order."""
        return [node for node in self._succ if not self._succ[node]]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        """Return an independent copy of the graph."""
        clone = DiGraph()
        for node in self._succ:
            clone.add_node(node)
        for source, target in self.edges():
            clone.add_edge(source, target)
        return clone

    def reversed(self) -> "DiGraph":
        """Return a copy with every edge direction flipped."""
        clone = DiGraph(nodes=self._succ)
        for source, target in self.edges():
            clone.add_edge(target, source)
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the subgraph induced by ``nodes``.

        Nodes not present in the graph are ignored, which lets callers pass
        an execution's activity set directly even when the execution mentions
        activities outside the current candidate graph.
        """
        keep = {node for node in nodes if node in self._succ}
        induced = DiGraph(nodes=keep)
        for source in keep:
            for target in self._succ[source]:
                if target in keep:
                    induced.add_edge(source, target)
        return induced

    def edge_subgraph(self, edges: Iterable[Edge]) -> "DiGraph":
        """Return a graph with the same nodes but only ``edges`` kept.

        Edges not present in this graph are ignored.
        """
        restricted = DiGraph(nodes=self._succ)
        for source, target in edges:
            if self.has_edge(source, target):
                restricted.add_edge(source, target)
        return restricted

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def __len__(self) -> int:
        return len(self._succ)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            set(self._succ) == set(other._succ)
            and self.edge_set() == other.edge_set()
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return (
            f"DiGraph(nodes={self.node_count}, edges={self.edge_count})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require(self, node: Node) -> None:
        if node not in self._succ:
            raise NodeNotFoundError(node)
