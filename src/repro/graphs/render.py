"""Rendering of process graphs as Graphviz DOT and ASCII adjacency text.

The paper presents its results as drawn process model graphs (Figures 7–12).
Without a plotting stack, the benches print the mined graphs through
:func:`to_ascii` and also emit DOT via :func:`to_dot` so a user can render
the figures with ``dot -Tpng`` offline.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, Optional

from repro.graphs.digraph import DiGraph

Node = Hashable


def _default_label(node: Node) -> str:
    return str(node)


def to_dot(
    graph: DiGraph,
    name: str = "process",
    label: Optional[Callable[[Node], str]] = None,
    edge_labels: Optional[Mapping[tuple, str]] = None,
    rankdir: str = "LR",
) -> str:
    """Serialize ``graph`` to Graphviz DOT.

    Parameters
    ----------
    graph:
        The graph to render.
    name:
        DOT graph name (sanitized into an identifier).
    label:
        Optional node-label function; defaults to ``str``.
    edge_labels:
        Optional ``(source, target) -> text`` labels, e.g. mined edge
        conditions from Section 7.
    rankdir:
        Graphviz rank direction; the paper's figures flow left-to-right.
    """
    label = label or _default_label
    safe_name = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    lines = [f"digraph {safe_name} {{", f"  rankdir={rankdir};"]
    lines.append("  node [shape=box, fontname=Helvetica];")
    ordered = sorted(graph.nodes(), key=str)
    ids = {node: f"n{i}" for i, node in enumerate(ordered)}
    for node in ordered:
        lines.append(f'  {ids[node]} [label="{_escape(label(node))}"];')
    for source, target in sorted(graph.edges(), key=str):
        attrs = ""
        if edge_labels and (source, target) in edge_labels:
            attrs = f' [label="{_escape(edge_labels[(source, target)])}"]'
        lines.append(f"  {ids[source]} -> {ids[target]}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def to_ascii(
    graph: DiGraph,
    label: Optional[Callable[[Node], str]] = None,
) -> str:
    """Render ``graph`` as sorted ``node -> successor, successor`` lines.

    Examples
    --------
    >>> g = DiGraph(edges=[("A", "B"), ("A", "C"), ("C", "D")])
    >>> print(to_ascii(g))
    A -> B, C
    B ->
    C -> D
    D ->
    """
    label = label or _default_label
    lines = []
    for node in sorted(graph.nodes(), key=str):
        successors = sorted(graph.successors(node), key=str)
        targets = ", ".join(label(s) for s in successors)
        lines.append(f"{label(node)} -> {targets}".rstrip())
    return "\n".join(lines)


def to_layered_ascii(
    graph: DiGraph,
    label: Optional[Callable[[Node], str]] = None,
) -> str:
    """Render an acyclic graph as topological layers plus its edges.

    Approximates the left-to-right layout of the paper's figures in
    plain text: each line is one rank (longest-path depth), followed by
    the edge list.

    Examples
    --------
    >>> g = DiGraph(edges=[("A", "B"), ("A", "C"), ("B", "D"),
    ...                    ("C", "D")])
    >>> print(to_layered_ascii(g))
    [A]  ->  [B C]  ->  [D]
    A -> B
    A -> C
    B -> D
    C -> D
    """
    from repro.graphs.traversal import topological_sort

    label = label or _default_label
    depth = {}
    for node in topological_sort(graph):
        depth[node] = max(
            (depth[p] + 1 for p in graph.predecessors(node)),
            default=0,
        )
    layers: dict = {}
    for node, rank in depth.items():
        layers.setdefault(rank, []).append(node)
    layer_text = "  ->  ".join(
        "[" + " ".join(sorted(label(n) for n in layers[rank])) + "]"
        for rank in sorted(layers)
    )
    edges = "\n".join(
        f"{label(a)} -> {label(b)}"
        for a, b in sorted(graph.edges(), key=str)
    )
    return layer_text + ("\n" + edges if edges else "")


def edge_list_text(graph: DiGraph) -> str:
    """Render the sorted edge list, one ``source -> target`` per line."""
    return "\n".join(
        f"{source} -> {target}"
        for source, target in sorted(graph.edges(), key=str)
    )


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')
