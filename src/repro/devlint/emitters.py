"""Devlint report emitters: text, JSON, and SARIF 2.1.0.

All three reuse the :mod:`repro.lint` vocabulary — the same
:class:`~repro.lint.diagnostics.Diagnostic` objects, the same
``Severity.sarif_level`` mapping, the same SARIF schema constants and
per-result shape (via :func:`repro.lint.emitters._sarif_location`), and
the same ``tool.driver.rules`` metadata builder fed by
:meth:`~repro.devlint.rules.DevRule.as_lint_rule`.  The only devlint
twist is that findings span many artifacts, so every result carries its
own physical location instead of the report-wide ``artifact`` that
model lint uses.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro import __version__
from repro.lint.emitters import (
    FORMAT_JSON,
    FORMAT_SARIF,
    FORMAT_TEXT,
    FORMATS,
    SARIF_SCHEMA,
    SARIF_VERSION,
    TOOL_URI,
    _sarif_location,
    _sarif_rule,
)

from repro.devlint.engine import DevReport, rules_for_report

DEVLINT_TOOL_NAME = "repro-devlint"


def render_text(report: DevReport) -> str:
    """One ``path:line: CODE severity: message`` line per finding,
    plus the summary footer."""
    lines: List[str] = []
    for artifact, diagnostic in report.entries:
        prefix = (
            f"{artifact}:"
            if diagnostic.line is None
            else f"{artifact}:{diagnostic.line}:"
        )
        line = (
            f"{prefix} {diagnostic.code} {diagnostic.severity.value}: "
            f"{diagnostic.message}"
        )
        if diagnostic.fixit is not None:
            line += f" (fix: {diagnostic.fixit})"
        lines.append(line)
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: DevReport) -> str:
    """Machine-readable JSON rendering of the whole report."""
    findings: List[Dict[str, Any]] = []
    for artifact, diagnostic in report.entries:
        payload = diagnostic.to_dict()
        payload.pop("location", None)
        payload["artifact"] = artifact
        findings.append(payload)
    document: Dict[str, Any] = {
        "tool": DEVLINT_TOOL_NAME,
        "version": __version__,
        "max_severity": (
            report.max_severity.value
            if report.max_severity is not None
            else None
        ),
        "exit_code": report.exit_code,
        "checked_rules": list(report.checked_rules),
        "scanned_modules": report.scanned_modules,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "findings": findings,
    }
    return json.dumps(document, indent=2, sort_keys=False)


def render_sarif(report: DevReport) -> str:
    """SARIF 2.1.0 rendering, ready for code-scanning upload."""
    lint_rules = [
        rule.as_lint_rule() for rule in rules_for_report(report)
    ]
    rule_index = {rule.code: i for i, rule in enumerate(lint_rules)}
    results: List[Dict[str, Any]] = []
    for artifact, diagnostic in report.entries:
        result: Dict[str, Any] = {
            "ruleId": diagnostic.code,
            "level": diagnostic.severity.sarif_level,
            "message": {"text": diagnostic.message},
            "locations": [_sarif_location(diagnostic, artifact)],
        }
        if diagnostic.code in rule_index:
            result["ruleIndex"] = rule_index[diagnostic.code]
        if diagnostic.fixit is not None:
            result["properties"] = {"fixit": diagnostic.fixit}
        results.append(result)
    document: Dict[str, Any] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": DEVLINT_TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "version": __version__,
                        "rules": [
                            _sarif_rule(rule) for rule in lint_rules
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def render(report: DevReport, output_format: str) -> str:
    """Dispatch on ``output_format`` (``text`` / ``json`` / ``sarif``)."""
    if output_format == FORMAT_TEXT:
        return render_text(report)
    if output_format == FORMAT_JSON:
        return render_json(report)
    if output_format == FORMAT_SARIF:
        return render_sarif(report)
    raise ValueError(
        f"unknown devlint output format {output_format!r}; "
        f"expected one of {FORMATS}"
    )


__all__ = [
    "DEVLINT_TOOL_NAME",
    "render",
    "render_text",
    "render_json",
    "render_sarif",
]
