"""``python -m repro.devlint`` — lint the codebase against itself.

Mirrors the ``repro-miner lint`` surface: ``--format`` selects
text/json/sarif, the exit code is 0 (clean or info-only), 1 (max
warning) or 2 (max error / unusable input), and codes are selected or
ignored by prefix.  The baseline defaults to
``<project-root>/devlint-baseline.json`` and is disabled with
``--no-baseline`` (the CI nightly mode); ``--write-baseline``
grandfathers the current findings and exits 0.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import FrozenSet, List, Optional, Sequence

from repro.lint.emitters import FORMAT_TEXT, FORMATS

from repro.devlint.baseline import (
    DEFAULT_BASELINE_NAME,
    baseline_from_entries,
    load_baseline,
    save_baseline,
)
from repro.devlint.emitters import render
from repro.devlint.engine import DevConfig, run_devlint
from repro.devlint.rules import all_dev_rules


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-devlint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-devlint",
        description=(
            "AST-based analyzer checking this repository's source "
            "against its durability, determinism, observability, and "
            "concurrency contracts (RL codes; see docs/LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=[Path("src/repro")],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default=FORMAT_TEXT,
        dest="output_format",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODES",
        help=(
            "comma-separated code prefixes to enable (e.g. RL1,RL401); "
            "default: all"
        ),
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated code prefixes to disable",
    )
    parser.add_argument(
        "--project-root",
        type=Path,
        default=None,
        help=(
            "repository root for project-level artifacts such as "
            "docs/OBSERVABILITY.md and the default baseline path "
            "(default: current directory)"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "baseline file of grandfathered findings (default: "
            f"<project-root>/{DEFAULT_BASELINE_NAME})"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report grandfathered findings too (CI nightly mode)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "grandfather every current finding into the baseline "
            "file and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered RL codes and exit",
    )
    return parser


def _parse_prefixes(
    values: Optional[List[str]],
) -> Optional[FrozenSet[str]]:
    if values is None:
        return None
    prefixes = {
        token.strip().upper()
        for value in values
        for token in value.split(",")
        if token.strip()
    }
    return frozenset(prefixes) or None


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_dev_rules():
            print(
                f"{rule.code} {rule.name} [{rule.severity.value}] "
                f"({rule.scope}): {rule.description}"
            )
        return 0

    project_root = args.project_root or Path.cwd()
    baseline_path = args.baseline or (
        project_root / DEFAULT_BASELINE_NAME
    )
    try:
        baseline = load_baseline(baseline_path)
    except ValueError as exc:
        print(f"repro-devlint: {exc}", file=sys.stderr)
        return 2

    config = DevConfig(
        select=_parse_prefixes(args.select),
        ignore=_parse_prefixes(args.ignore) or frozenset(),
        baseline=baseline,
        use_baseline=not (args.no_baseline or args.write_baseline),
        project_root=project_root,
    )
    report = run_devlint(args.paths, config=config)

    if args.write_baseline:
        save_baseline(baseline_path, baseline_from_entries(report.entries))
        print(
            f"repro-devlint: wrote {len(report.entries)} grandfathered "
            f"finding(s) to {baseline_path}"
        )
        return 0

    print(render(report, args.output_format))
    return report.exit_code


__all__ = ["build_parser", "main"]
