"""The devlint rule registry.

Mirrors :mod:`repro.lint.rules`: a rule is a function registered under
a stable ``RLxxx`` code with the :func:`devrule` decorator, and the
engine iterates the registry in code order.  Two scopes exist:

* ``module`` rules run once per :class:`~repro.devlint.context.
  SourceModule` and see ``(module, context)``;
* ``project`` rules run once per analysis and see the whole
  :class:`~repro.devlint.context.DevContext` (cross-module checks such
  as the metric-registry consistency rules).

Codes are permanent API, like the ``PM`` model-lint codes: once
shipped, an ``RL`` code keeps its meaning forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.lint.diagnostics import Severity
from repro.lint.rules import LintRule

from repro.devlint.context import DevContext, SourceModule

SCOPE_MODULE = "module"
SCOPE_PROJECT = "project"


@dataclass(frozen=True)
class DevFinding:
    """What a devlint rule yields: a place, a message, a fix hint.

    ``module`` is ``None`` only for project-scope findings that have no
    single home file (they anchor to the report, not a line).
    """

    message: str
    module: Optional[SourceModule] = None
    line: Optional[int] = None
    fixit: Optional[str] = None


ModuleCheck = Callable[
    [SourceModule, DevContext], Iterable[DevFinding]
]
ProjectCheck = Callable[[DevContext], Iterable[DevFinding]]
DevCheck = Union[ModuleCheck, ProjectCheck]


@dataclass(frozen=True)
class DevRule:
    """One registered rule: identity, defaults, scope, check body."""

    code: str
    name: str
    severity: Severity
    description: str
    scope: str
    check: DevCheck

    def as_lint_rule(self) -> LintRule:
        """This rule's metadata as a :class:`~repro.lint.rules.
        LintRule`, so the shared SARIF emitter can ship it in the
        ``tool.driver.rules`` array."""

        def no_check(_context: object) -> Iterable[object]:
            return ()

        return LintRule(
            code=self.code,
            name=self.name,
            severity=self.severity,
            description=self.description,
            requires_log=False,
            check=no_check,  # type: ignore[arg-type]
        )


_REGISTRY: Dict[str, DevRule] = {}


def devrule(
    code: str,
    name: str,
    severity: Severity,
    description: str,
    scope: str = SCOPE_MODULE,
) -> Callable[[DevCheck], DevCheck]:
    """Register a rule function under ``code``."""
    if scope not in (SCOPE_MODULE, SCOPE_PROJECT):
        raise ValueError(f"bad devlint rule scope {scope!r}")

    def decorator(check: DevCheck) -> DevCheck:
        if code in _REGISTRY:
            raise ValueError(f"duplicate devlint rule code {code!r}")
        _REGISTRY[code] = DevRule(
            code=code,
            name=name,
            severity=severity,
            description=description,
            scope=scope,
            check=check,
        )
        return check

    return decorator


def all_dev_rules() -> List[DevRule]:
    """Every registered rule, in code order."""
    import repro.devlint.builtin  # noqa: F401  (registers on import)

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_dev_rule(code: str) -> DevRule:
    """Look up one rule by code (:class:`KeyError` if unknown)."""
    all_dev_rules()
    return _REGISTRY[code]
