"""Parsed-module cache and suppression bookkeeping for devlint.

Every rule sees the same :class:`SourceModule` objects — one parse per
file per run, shared across the whole registry — plus a
:class:`DevContext` carrying project-level derived sets (the declared
metric registry, every ``repro_*`` string constant in the scanned
tree).

Inline suppressions use the ``# devlint: ignore[RLxxx]`` comment form
(comma-separated codes allowed) on the finding's first source line.
:class:`SourceModule` tracks which suppressions actually fired so the
engine can error on stale ones — a suppression that no longer masks
anything is itself a finding (``RL002``).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

_SUPPRESSION = re.compile(
    r"#\s*devlint:\s*ignore\[([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)\]"
)

_METRIC_TOKEN = re.compile(r"\brepro_[a-z0-9_]+\b")


class SourceModule:
    """One parsed source file plus its suppression table.

    Attributes
    ----------
    path:
        Absolute path of the file.
    relpath:
        Path relative to the scan invocation (POSIX separators); used
        as the artifact URI in reports.
    tree:
        The parsed :class:`ast.Module` (``None`` when the file failed
        to parse; the engine reports that as ``RL001``).
    """

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[str] = None
        try:
            self.tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError) as exc:
            self.parse_error = str(exc)
        #: 1-based line -> codes suppressed on that line.
        self.suppressions: Dict[int, Set[str]] = {}
        #: ``(line, code)`` pairs that masked at least one finding.
        self.used_suppressions: Set[Tuple[int, str]] = set()
        for line_number, line in enumerate(self.lines, start=1):
            match = _SUPPRESSION.search(line)
            if match:
                codes = {
                    code.strip() for code in match.group(1).split(",")
                }
                self.suppressions[line_number] = codes

    def is_suppressed(self, line: Optional[int], code: str) -> bool:
        """Whether ``code`` is suppressed on ``line`` (marks it used)."""
        if line is None:
            return False
        codes = self.suppressions.get(line)
        if codes is None or code not in codes:
            return False
        self.used_suppressions.add((line, code))
        return True

    def unused_suppressions(self) -> List[Tuple[int, str]]:
        """``(line, code)`` suppressions that masked nothing."""
        stale = [
            (line, code)
            for line, codes in self.suppressions.items()
            for code in sorted(codes)
            if (line, code) not in self.used_suppressions
        ]
        stale.sort()
        return stale

    @property
    def in_resilience(self) -> bool:
        """Whether the module lives under ``repro/resilience/``."""
        return "resilience" in self.path.parts

    def name_matches(self, *suffixes: str) -> bool:
        """Whether the file's path ends with one of ``suffixes``."""
        posix = self.path.as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)


class DevContext:
    """Everything a rule may inspect during one devlint run.

    Attributes
    ----------
    modules:
        The scanned modules in deterministic (sorted-path) order.
    registry_names:
        The declared metric catalogue rules RL301/RL302 check against
        (defaults to :func:`repro.obs.registry.declared_metric_names`).
    project_root:
        Root used to locate project-level artifacts such as
        ``docs/OBSERVABILITY.md``.
    """

    def __init__(
        self,
        modules: List[SourceModule],
        registry_names: Optional[FrozenSet[str]] = None,
        project_root: Optional[Path] = None,
    ) -> None:
        self.modules = modules
        self.project_root = project_root
        self._explicit_registry = registry_names is not None
        if registry_names is None:
            from repro.obs.registry import declared_metric_names

            registry_names = declared_metric_names()
        self.registry_names: FrozenSet[str] = registry_names
        self._metric_tokens: Optional[FrozenSet[str]] = None

    @property
    def has_explicit_registry(self) -> bool:
        """Whether the run injected its own registry (test fixtures)."""
        return self._explicit_registry

    @property
    def scans_obs_package(self) -> bool:
        """Whether the scan covers the real recorder implementation.

        The project-scope metric rules only make sense for whole-tree
        scans (or fixture runs with an injected registry); scanning a
        subpackage must not report every metric as unemitted.
        """
        return any(
            module.name_matches("obs/recorder.py")
            for module in self.modules
        )

    @property
    def metric_tokens(self) -> FrozenSet[str]:
        """Every ``repro_*`` token inside a string constant in the tree."""
        if self._metric_tokens is None:
            tokens: Set[str] = set()
            for module in self.modules:
                if module.tree is None:
                    continue
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.Constant) and isinstance(
                        node.value, str
                    ):
                        tokens.update(
                            _METRIC_TOKEN.findall(node.value)
                        )
            self._metric_tokens = frozenset(tokens)
        return self._metric_tokens


def collect_modules(paths: List[Path]) -> List[SourceModule]:
    """Load every ``.py`` file under ``paths`` (files or directories).

    Files are returned in sorted-path order so reports are
    deterministic regardless of filesystem enumeration order.
    """
    files: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    modules: List[SourceModule] = []
    for file_path in sorted(files):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            module = SourceModule(file_path, _relpath(file_path), "")
            module.parse_error = str(exc)
            module.tree = None
            modules.append(module)
            continue
        modules.append(
            SourceModule(file_path, _relpath(file_path), source)
        )
    return modules


def _relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()
