"""The built-in RL rule set: the codebase's contracts, statically.

Four families, mirroring the runtime contracts PRs 4–6 introduced:

* **RL1xx durability** — artifact writes must go through
  :mod:`repro.resilience.durable`; renames must be crash-safe; session
  paths come from the session constants.
* **RL2xx determinism** — canonical output paths must not depend on
  set iteration order, wall clocks, or lossy float formatting.
* **RL3xx observability** — metric names are declared in
  :mod:`repro.obs.registry` and emitted; CLI handlers publish spans.
* **RL4xx concurrency** — pool submissions must be picklable, workers
  must not mutate module globals, and choke-point code must not
  swallow injected faults.

Rules are deliberately syntactic: no imports are executed, no type
inference beyond same-class/same-function assignment tracking.  False
positives are handled with ``# devlint: ignore[RLxxx]`` plus a
justification, and the engine errors on stale suppressions.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.diagnostics import Severity

from repro.devlint.context import DevContext, SourceModule
from repro.devlint.rules import DevFinding, devrule

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``os.replace``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _walk_with_parents(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Optional[ast.AST]]]:
    stack: List[Tuple[ast.AST, Optional[ast.AST]]] = [(tree, None)]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        for child in ast.iter_child_nodes(node):
            stack.append((child, node))


def _docstring_nodes(tree: ast.Module) -> Set[int]:
    """ids of every ``Constant`` node that is a docstring."""
    ids: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                ids.add(id(body[0].value))
    return ids


def _functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.FunctionDef, Optional[ast.ClassDef]]]:
    """Every function definition, with its enclosing class (if any)."""

    def visit(
        node: ast.AST, enclosing: Optional[ast.ClassDef]
    ) -> Iterator[Tuple[ast.FunctionDef, Optional[ast.ClassDef]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, enclosing  # type: ignore[misc]
                yield from visit(child, enclosing)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            else:
                yield from visit(child, enclosing)

    yield from visit(tree, None)


#: Function names whose output is part of a canonical / serialized
#: surface (``format_*`` report renderers are deliberately out of
#: scope: they produce human displays, not round-trippable artifacts).
#: RL201 (ordering) adds merge/snapshot on top of the serializer names
#: RL203 (float repr) uses.
_SERIALIZER_NAME = re.compile(
    r"(^|_)(to_payload|to_json|to_dict|to_text|serializ\w*|dump|dumps|"
    r"save|write|canonical|integrity|checksum)(_|$)"
)
_CANONICAL_NAME = re.compile(
    r"(^|_)(to_payload|to_json|to_dict|to_text|serializ\w*|dump|dumps|"
    r"save|write|canonical|integrity|checksum|merge|snapshot)(_|$)"
)


# ---------------------------------------------------------------------------
# RL1xx — durability
# ---------------------------------------------------------------------------
_WRITE_MODE = re.compile(r"[wax+]")


def _call_mode(call: ast.Call, position: int) -> Optional[str]:
    """The literal mode argument of an ``open``-style call, if any."""
    if len(call.args) > position:
        node = call.args[position]
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None
    for keyword in call.keywords:
        if keyword.arg == "mode":
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                return value.value
            return None
    return "r"


@devrule(
    "RL101",
    "raw-artifact-write",
    Severity.WARNING,
    "File opened for writing outside repro.resilience.durable; a crash "
    "mid-write can leave a torn artifact behind",
)
def check_raw_artifact_write(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    if module.tree is None or module.name_matches("resilience/durable.py"):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _call_mode(node, 1)
        elif isinstance(func, ast.Attribute) and func.attr == "fdopen":
            mode = _call_mode(node, 1)
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            mode = "w"
        else:
            continue
        if mode is None or not _WRITE_MODE.search(mode):
            continue
        yield DevFinding(
            message=(
                "raw write-mode file operation bypasses the durability "
                "contract (torn on crash)"
            ),
            module=module,
            line=node.lineno,
            fixit=(
                "route the write through repro.resilience.durable."
                "durable_write / durable_stream_writer, or suppress "
                "with a justification if this sink manages its own "
                "fsync discipline"
            ),
        )


@devrule(
    "RL102",
    "rename-without-fsync",
    Severity.WARNING,
    "os.replace/os.rename in a function with no fsync: the rename may "
    "not survive a crash (and the source may be torn)",
)
def check_rename_without_fsync(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    if module.tree is None or module.name_matches("resilience/durable.py"):
        return
    for function, _ in _functions(module.tree):
        renames: List[ast.Call] = []
        has_fsync = False
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name in ("os.replace", "os.rename"):
                    renames.append(node)
                elif name.endswith("fsync") or name.endswith(
                    "fsync_directory"
                ):
                    has_fsync = True
        if has_fsync:
            continue
        for call in renames:
            yield DevFinding(
                message=(
                    "rename without the sibling-temp + fsync pattern; "
                    "the move may be lost or expose a torn source "
                    "after a crash"
                ),
                module=module,
                line=call.lineno,
                fixit=(
                    "write a temp sibling, fsync it, os.replace, then "
                    "fsync the parent directory — or call "
                    "repro.resilience.durable.durable_write"
                ),
            )


_SESSION_LITERALS = {
    "checkpoint.json": "CHECKPOINT_NAME",  # devlint: ignore[RL103]
    ".prev": "PREVIOUS_SUFFIX",  # devlint: ignore[RL103]
    "wal": "WAL_DIRECTORY",  # devlint: ignore[RL103]
}


@devrule(
    "RL103",
    "session-path-literal",
    Severity.WARNING,
    "Journal/checkpoint path component hardcoded outside the session "
    "helpers; layout changes would silently diverge",
)
def check_session_path_literal(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    if module.tree is None or module.in_resilience:
        return
    docstrings = _docstring_nodes(module.tree)
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in _SESSION_LITERALS
            and id(node) not in docstrings
        ):
            constant = _SESSION_LITERALS[node.value]
            yield DevFinding(
                message=(
                    f"session path component {node.value!r} constructed "
                    "outside repro.resilience"
                ),
                module=module,
                line=node.lineno,
                fixit=(
                    f"import {constant} from repro.resilience.durable "
                    "(re-exported by repro.resilience.session)"
                ),
            )


# ---------------------------------------------------------------------------
# RL2xx — determinism
# ---------------------------------------------------------------------------
_ORDER_INSENSITIVE_SINKS = {
    "set",
    "frozenset",
    "sorted",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "len",
    "Counter",
    "collections.Counter",
}


def _local_set_names(function: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            annotation = _dotted(node.annotation)
            if annotation.lower().endswith(("set", "frozenset")) or (
                node.value is not None and _is_set_expr(node.value)
            ):
                names.add(node.target.id)
    return names


def _class_set_attrs(cls: Optional[ast.ClassDef]) -> Set[str]:
    attrs: Set[str] = set()
    if cls is None:
        return attrs
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
    return attrs


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and _dotted(node.func) in (
        "set",
        "frozenset",
    )


def _unordered_iterable(
    node: ast.AST, local_sets: Set[str], attr_sets: Set[str]
) -> Optional[str]:
    """Describe why iterating ``node`` has unstable order, or ``None``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in ("set", "frozenset"):
            return f"{name}(...)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("values", "keys")
            and not node.args
            and not node.keywords
        ):
            return f".{node.func.attr}()"
        return None
    if isinstance(node, ast.Name) and node.id in local_sets:
        return f"the set variable {node.id!r}"
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in attr_sets
    ):
        return f"the set attribute self.{node.attr}"
    return None


@devrule(
    "RL201",
    "unsorted-collection-order",
    Severity.WARNING,
    "Canonical-output code iterates a set (or dict view) without "
    "sorted(); serialization/merge order becomes run-dependent",
)
def check_unsorted_collection_order(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    if module.tree is None:
        return
    for function, enclosing in _functions(module.tree):
        if not _CANONICAL_NAME.search(function.name):
            continue
        local_sets = _local_set_names(function)
        attr_sets = _class_set_attrs(enclosing)
        parents: Dict[int, ast.AST] = {}
        for node, parent in _walk_with_parents(function):
            if parent is not None:
                parents[id(node)] = parent
        for node in ast.walk(function):
            sites: List[ast.expr] = []
            comp: Optional[ast.AST] = None
            if isinstance(node, ast.For):
                sites = [node.iter]
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp)
            ):
                comp = node
                sites = [gen.iter for gen in node.generators]
            else:
                continue
            if comp is not None and _order_insensitive(comp, parents):
                continue
            for site in sites:
                reason = _unordered_iterable(
                    site, local_sets, attr_sets
                )
                if reason is None:
                    continue
                yield DevFinding(
                    message=(
                        f"{function.name} iterates {reason} into an "
                        "order-sensitive result without sorted()"
                    ),
                    module=module,
                    line=site.lineno,
                    fixit=(
                        "wrap the iterable in sorted(...) (or feed an "
                        "order-insensitive sink such as "
                        "set/sum/Counter)"
                    ),
                )


def _order_insensitive(
    comp: ast.AST, parents: Dict[int, ast.AST]
) -> bool:
    parent = parents.get(id(comp))
    return (
        isinstance(parent, ast.Call)
        and comp in parent.args
        and _dotted(parent.func) in _ORDER_INSENSITIVE_SINKS
    )


_WALL_CLOCK_CALLS = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.now": "datetime.now()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
}
_SEEDABLE_RANDOM = {"Random", "SystemRandom", "seed"}


@devrule(
    "RL202",
    "uninjected-clock-or-random",
    Severity.WARNING,
    "Wall clock or module-level random in library code; use the "
    "injected clock (repro.resilience.faults.now) and seeded "
    "random.Random instances",
)
def check_uninjected_clock_or_random(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    # faults.py *is* the clock authority (it wraps time.time with the
    # planned skew); everything else injects through it.
    if module.tree is None or module.name_matches(
        "resilience/faults.py"
    ):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name in _WALL_CLOCK_CALLS:
            yield DevFinding(
                message=(
                    f"{_WALL_CLOCK_CALLS[name]} reads the wall clock "
                    "directly; canonical outputs and tests cannot "
                    "control it"
                ),
                module=module,
                line=node.lineno,
                fixit=(
                    "use repro.resilience.faults.now() (skew-aware, "
                    "fault-injectable) or take a clock parameter"
                ),
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "random"
            and node.func.attr not in _SEEDABLE_RANDOM
        ):
            yield DevFinding(
                message=(
                    f"module-level random.{node.func.attr}() draws "
                    "from shared unseeded state"
                ),
                module=module,
                line=node.lineno,
                fixit=(
                    "construct a seeded random.Random(seed) instance "
                    "and draw from it"
                ),
            )


_FLOAT_SPEC = re.compile(r"[0-9.,]*[geEfFG%n]$")


@devrule(
    "RL203",
    "lossy-float-format",
    Severity.WARNING,
    "Float formatted with a lossy presentation spec inside a "
    "serializer; round-trips silently lose precision",
)
def check_lossy_float_format(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    if module.tree is None:
        return
    for function, _ in _functions(module.tree):
        if not _SERIALIZER_NAME.search(function.name):
            continue
        for node in ast.walk(function):
            spec: Optional[str] = None
            line = 0
            if isinstance(node, ast.FormattedValue) and isinstance(
                node.format_spec, ast.JoinedStr
            ):
                parts = [
                    value.value
                    for value in node.format_spec.values
                    if isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ]
                spec = "".join(parts)
                line = node.lineno
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "format"
                and len(node.args) == 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                spec = node.args[1].value
                line = node.lineno
            if spec is None or not _FLOAT_SPEC.search(spec):
                continue
            yield DevFinding(
                message=(
                    f"{function.name} formats a float with "
                    f"{spec!r}; the serialized value is lossy and "
                    "round-trip-unstable"
                ),
                module=module,
                line=line,
                fixit=(
                    "apply the explicit repr policy (integral floats "
                    "as int, everything else as repr(float(v))) like "
                    "repro.logs.codec._format_time"
                ),
            )


# ---------------------------------------------------------------------------
# RL3xx — observability
# ---------------------------------------------------------------------------
_EMIT_METHODS = ("count", "gauge", "observe")


@devrule(
    "RL301",
    "unregistered-metric",
    Severity.WARNING,
    "Metric name emitted in code but missing from the declared "
    "registry (repro.obs.registry)",
)
def check_unregistered_metric(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    if module.tree is None or module.name_matches("obs/registry.py"):
        return
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _EMIT_METHODS
            and node.args
        ):
            continue
        first = node.args[0]
        if not (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and first.value.startswith("repro_")
        ):
            continue
        if first.value in context.registry_names:
            continue
        yield DevFinding(
            message=(
                f"metric {first.value!r} is emitted here but not "
                "declared in repro.obs.registry.DECLARED_METRICS"
            ),
            module=module,
            line=node.lineno,
            fixit=(
                "add a MetricSpec for it to DECLARED_METRICS (and "
                "regenerate the docs/OBSERVABILITY.md tables)"
            ),
        )


@devrule(
    "RL302",
    "unemitted-metric",
    Severity.WARNING,
    "Metric declared (or documented) but emitted nowhere in the "
    "scanned tree; the registry/doc has drifted from the code",
    scope="project",
)
def check_unemitted_metric(
    context: DevContext,
) -> Iterator[DevFinding]:
    # Meaningful only for whole-package scans (or fixture runs that
    # inject their own registry); a subtree scan must not report every
    # metric of the unscanned remainder as missing.
    if not (
        context.scans_obs_package or context.has_explicit_registry
    ):
        return
    emitted = context.metric_tokens
    for name in sorted(context.registry_names - emitted):
        yield DevFinding(
            message=(
                f"metric {name!r} is declared in the registry but no "
                "scanned module references it"
            ),
            fixit=(
                "emit it through a recorder, or retire the "
                "declaration (a breaking change — call it out in the "
                "changelog)"
            ),
        )
    doc_names = _documented_metric_names(context)
    if doc_names is not None:
        for name in sorted(doc_names - set(context.registry_names)):
            yield DevFinding(
                message=(
                    f"metric {name!r} is documented in "
                    "docs/OBSERVABILITY.md but not declared in the "
                    "registry"
                ),
                fixit=(
                    "regenerate the doc tables from "
                    "repro.obs.registry.render_metrics_markdown()"
                ),
            )


def _documented_metric_names(
    context: DevContext,
) -> Optional[Set[str]]:
    if context.project_root is None:
        return None
    doc = context.project_root / "docs" / "OBSERVABILITY.md"
    try:
        text = doc.read_text(encoding="utf-8")
    except OSError:
        return None
    return set(re.findall(r"\brepro_[a-z0-9_]+_total\b", text)) | set(
        re.findall(r"\brepro_[a-z0-9_]+\b(?=`)", text)
    )


@devrule(
    "RL303",
    "cli-handler-without-span",
    Severity.WARNING,
    "CLI subcommand handler obtains a recorder but never opens a "
    "span; its work is invisible in the run manifest",
)
def check_cli_handler_without_span(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    if module.tree is None:
        return
    for function, _ in _functions(module.tree):
        if not function.name.startswith("_cmd_"):
            continue
        uses_recorder = False
        opens_span = False
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name == "_metrics_recorder":
                    uses_recorder = True
                elif name.endswith(".span"):
                    opens_span = True
        if uses_recorder and not opens_span:
            yield DevFinding(
                message=(
                    f"{function.name} creates a metrics recorder but "
                    "opens no span; the manifest will carry no timing "
                    "for this command"
                ),
                module=module,
                line=function.lineno,
                fixit=(
                    "wrap the command's work in "
                    "`with recorder.span(...)` before the manifest "
                    "snapshot"
                ),
            )


# ---------------------------------------------------------------------------
# RL4xx — concurrency
# ---------------------------------------------------------------------------
_POOL_FUNCTIONS = {
    "process_map",
    "process_map_timed",
    "process_fold",
    "supervised_fold",
}


def _pool_fn_argument(node: ast.Call) -> Optional[ast.expr]:
    """The worker-callable argument of a pool call, if this is one."""
    name = _dotted(node.func)
    short = name.rsplit(".", 1)[-1]
    if short in _POOL_FUNCTIONS:
        for keyword in node.keywords:
            if keyword.arg == "fn":
                return keyword.value
        return node.args[0] if node.args else None
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "submit"
        and node.args
    ):
        return node.args[0]
    return None


@devrule(
    "RL401",
    "unpicklable-pool-submission",
    Severity.WARNING,
    "Lambda, bound method, or closure submitted to a process pool; "
    "it cannot pickle (or silently rebinds state) across fork/spawn",
)
def check_unpicklable_pool_submission(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    if module.tree is None:
        return

    def visit(
        node: ast.AST, nested_defs: Set[str], depth: int
    ) -> Iterator[DevFinding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                inner = {
                    stmt.name
                    for stmt in ast.walk(child)
                    if isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and stmt is not child
                }
                yield from visit(child, nested_defs | inner, depth + 1)
                continue
            if isinstance(child, ast.Call):
                fn = _pool_fn_argument(child)
                problem: Optional[str] = None
                if isinstance(fn, ast.Lambda):
                    problem = "a lambda"
                elif isinstance(fn, ast.Attribute):
                    problem = f"the bound attribute {_dotted(fn)!r}"
                elif (
                    isinstance(fn, ast.Name)
                    and depth > 0
                    and fn.id in nested_defs
                ):
                    problem = f"the closure {fn.id!r}"
                if problem is not None:
                    yield DevFinding(
                        message=(
                            f"{problem} is submitted to a process "
                            "pool; only module-level functions "
                            "pickle reliably"
                        ),
                        module=module,
                        line=child.lineno,
                        fixit=(
                            "hoist the worker to a module-level "
                            "function taking its state as an "
                            "argument tuple"
                        ),
                    )
            yield from visit(child, nested_defs, depth)

    yield from visit(module.tree, set(), 0)


@devrule(
    "RL402",
    "global-mutation-in-worker",
    Severity.WARNING,
    "Pool worker function declares `global`; the mutation happens in "
    "a forked child and is silently lost in the parent",
)
def check_global_mutation_in_worker(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    if module.tree is None:
        return
    worker_names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            fn = _pool_fn_argument(node)
            if isinstance(fn, ast.Name):
                worker_names.add(fn.id)
    if not worker_names:
        return
    for function, _ in _functions(module.tree):
        if function.name not in worker_names:
            continue
        for node in ast.walk(function):
            if isinstance(node, ast.Global):
                yield DevFinding(
                    message=(
                        f"worker {function.name} mutates module "
                        f"global(s) {', '.join(node.names)}; the "
                        "write lands in the child process only"
                    ),
                    module=module,
                    line=node.lineno,
                    fixit=(
                        "return the value from the worker and fold "
                        "it in the parent instead"
                    ),
                )


def _is_choke_point(module: SourceModule) -> bool:
    return (
        module.in_resilience
        or "maybe_fault" in module.source
        or "ProcessPoolExecutor" in module.source
        or "BrokenProcessPool" in module.source
    )


@devrule(
    "RL403",
    "fault-swallowing-except",
    Severity.WARNING,
    "Broad except in choke-point code with no re-raise; injected "
    "faults (InjectedIOError) and real I/O errors vanish silently",
)
def check_fault_swallowing_except(
    module: SourceModule, context: DevContext
) -> Iterator[DevFinding]:
    if module.tree is None or not _is_choke_point(module):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad_handler(node.type):
            continue
        if any(
            isinstance(inner, ast.Raise)
            for stmt in node.body
            for inner in ast.walk(stmt)
        ):
            continue
        yield DevFinding(
            message=(
                "broad except swallows exceptions in fault-injection "
                "choke-point code; an InjectedIOError would vanish "
                "here"
            ),
            module=module,
            line=node.lineno,
            fixit=(
                "catch the specific exceptions this block can "
                "produce, re-raise after handling, or suppress with "
                "a justification for deliberate supervision"
            ),
        )


def _is_broad_handler(node: Optional[ast.expr]) -> bool:
    if node is None:
        return True
    if isinstance(node, ast.Name) and node.id == "Exception":
        return True
    if isinstance(node, ast.Tuple):
        return any(_is_broad_handler(element) for element in node.elts)
    return False


__all__: Sequence[str] = ()
