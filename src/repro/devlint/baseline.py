"""The grandfathered-findings baseline.

A baseline entry identifies a finding by ``(artifact, code, message)``
— deliberately *not* by line number, so unrelated edits above a
grandfathered finding do not resurrect it, while any change to the
finding itself (different message, moved file) does.

The file is plain JSON, checked in at the repository root, written
through :func:`repro.resilience.durable.durable_write` (the analyzer
holds itself to the contract it enforces).  CI nightly runs with
``--no-baseline`` so the grandfathered set only ever shrinks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.resilience.durable import durable_write

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "devlint-baseline.json"

_Key = Tuple[str, str, str]


class Baseline:
    """An accepted set of ``(artifact, code, message)`` findings."""

    def __init__(self, entries: Iterable[_Key] = ()) -> None:
        self.entries: Set[_Key] = set(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, artifact: str, diagnostic: Diagnostic) -> bool:
        """Whether ``diagnostic`` is grandfathered for ``artifact``."""
        return (
            artifact,
            diagnostic.code,
            diagnostic.message,
        ) in self.entries

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready, deterministically ordered representation."""
        findings = [
            {"artifact": artifact, "code": code, "message": message}
            for artifact, code, message in sorted(self.entries)
        ]
        return {"version": BASELINE_VERSION, "findings": findings}


def load_baseline(path: Path) -> Baseline:
    """Load ``path``; a missing file is an empty baseline.

    A malformed file raises ``ValueError`` — silently treating garbage
    as "no baseline" would un-grandfather every finding at once.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return Baseline()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"baseline file {path} is not valid JSON: {exc}"
        ) from exc
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("findings"), list)
    ):
        raise ValueError(
            f"baseline file {path} has an unsupported layout; expected "
            f'{{"version": {BASELINE_VERSION}, "findings": [...]}}'
        )
    entries: List[_Key] = []
    for finding in payload["findings"]:
        if not isinstance(finding, dict):
            raise ValueError(
                f"baseline file {path}: finding entries must be objects"
            )
        entries.append(
            (
                str(finding.get("artifact", "")),
                str(finding.get("code", "")),
                str(finding.get("message", "")),
            )
        )
    return Baseline(entries)


def save_baseline(path: Path, baseline: Baseline) -> None:
    """Durably write ``baseline`` as canonical JSON."""
    text = json.dumps(baseline.to_payload(), indent=2, sort_keys=False)
    durable_write(path, (text + "\n").encode("utf-8"))


def baseline_from_entries(
    entries: Iterable[Tuple[str, Diagnostic]],
) -> Baseline:
    """Build a baseline grandfathering every ``(artifact, diagnostic)``
    pair of a report."""
    return Baseline(
        (artifact, diagnostic.code, diagnostic.message)
        for artifact, diagnostic in entries
    )


__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "Baseline",
    "load_baseline",
    "save_baseline",
    "baseline_from_entries",
]
