"""``python -m repro.devlint`` entry point."""

import sys

from repro.devlint.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # The stdout consumer (e.g. ``| head``) went away mid-report;
        # a truncated read of an advisory report is not a failure.
        sys.stderr.close()
        code = 0
    raise SystemExit(code)
