"""repro.devlint — the codebase linting itself.

An AST-based (stdlib ``ast``) analyzer that checks this repository's
source against the runtime contracts the ``repro.resilience``,
``repro.obs`` and ``repro.core.parallel`` layers established:

* **RL1xx durability** — artifact writes go through ``durable_write``,
  renames carry fsync, session paths come from the session constants;
* **RL2xx determinism** — no unsorted set iteration, wall clocks, or
  lossy float formats on canonical-output paths;
* **RL3xx observability** — metric names match the declared registry
  in :mod:`repro.obs.registry`, CLI handlers open spans;
* **RL4xx concurrency** — pool submissions pickle, workers do not
  mutate globals, choke points do not swallow injected faults.

It shares the diagnostic vocabulary and emitters of the model linter
(:mod:`repro.lint`): the same :class:`~repro.lint.diagnostics.Severity`
ladder, :class:`~repro.lint.diagnostics.Diagnostic` objects, exit-code
semantics (0/1/2), and SARIF 2.1.0 output shape.

Run it with ``python -m repro.devlint [paths] [--format sarif]``; see
``docs/LINTING.md`` ("Analyzing the analyzer") for the code catalogue.
"""

from repro.devlint.baseline import (
    Baseline,
    baseline_from_entries,
    load_baseline,
    save_baseline,
)
from repro.devlint.context import (
    DevContext,
    SourceModule,
    collect_modules,
)
from repro.devlint.emitters import render
from repro.devlint.engine import (
    CODE_PARSE_ERROR,
    CODE_STALE_SUPPRESSION,
    PROJECT_ARTIFACT,
    DevConfig,
    DevReport,
    run_devlint,
)
from repro.devlint.rules import (
    DevFinding,
    DevRule,
    all_dev_rules,
    get_dev_rule,
)

__all__ = [
    "Baseline",
    "CODE_PARSE_ERROR",
    "CODE_STALE_SUPPRESSION",
    "DevConfig",
    "DevContext",
    "DevFinding",
    "DevReport",
    "DevRule",
    "PROJECT_ARTIFACT",
    "SourceModule",
    "all_dev_rules",
    "baseline_from_entries",
    "collect_modules",
    "get_dev_rule",
    "load_baseline",
    "render",
    "run_devlint",
    "save_baseline",
]
