"""The devlint engine: run rules, apply suppressions and baseline.

One :func:`run_devlint` call parses every target module once (shared
:class:`~repro.devlint.context.SourceModule` cache), runs each enabled
rule from :func:`~repro.devlint.rules.all_dev_rules`, converts the
rule's :class:`~repro.devlint.rules.DevFinding` values into the shared
:class:`repro.lint.diagnostics.Diagnostic` vocabulary, then applies the
two masking layers in order:

1. inline ``# devlint: ignore[RLxxx]`` suppressions (checked per line;
   a suppression that masks nothing becomes an ``RL002`` error), and
2. the checked-in baseline of grandfathered findings (skipped under
   ``--no-baseline``).

Engine-level codes sit outside the rule registry: ``RL001`` (a target
file failed to parse) and ``RL002`` (stale suppression), both errors —
a devlint run that cannot see the code, or that carries dead
annotations, must fail CI loudly rather than report a clean tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import EXIT_CLEAN, EXIT_ERROR, EXIT_WARNING

from repro.devlint.baseline import Baseline
from repro.devlint.context import (
    DevContext,
    SourceModule,
    collect_modules,
)
from repro.devlint.rules import (
    SCOPE_PROJECT,
    DevFinding,
    DevRule,
    all_dev_rules,
)

#: Artifact URI used for project-scope findings with no home file.
PROJECT_ARTIFACT = "<project>"

CODE_PARSE_ERROR = "RL001"
CODE_STALE_SUPPRESSION = "RL002"


@dataclass(frozen=True)
class DevConfig:
    """Configuration for one devlint run.

    ``select``/``ignore`` are code *prefixes* (``RL1`` enables the
    whole durability family); ignore wins over select.  ``baseline``
    is applied only when ``use_baseline`` is true, so ``--no-baseline``
    is a config flip, not a different code path.
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    baseline: Optional[Baseline] = None
    use_baseline: bool = True
    project_root: Optional[Path] = None
    registry_names: Optional[FrozenSet[str]] = None

    def enabled(self, code: str) -> bool:
        """Whether findings of ``code`` should be reported."""
        if any(code.startswith(prefix) for prefix in self.ignore):
            return False
        if self.select is None:
            return True
        return any(code.startswith(prefix) for prefix in self.select)


@dataclass
class DevReport:
    """Outcome of one devlint run.

    ``entries`` pairs every diagnostic with the artifact (source file)
    it belongs to, in deterministic ``(artifact, code, line)`` order.
    Exit-code semantics mirror :class:`repro.lint.engine.LintReport`:
    0 clean/info, 1 max warning, 2 max error.
    """

    entries: List[Tuple[str, Diagnostic]] = field(default_factory=list)
    checked_rules: Tuple[str, ...] = ()
    scanned_modules: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """Just the diagnostics, report order."""
        return [diagnostic for _, diagnostic in self.entries]

    @property
    def max_severity(self) -> Optional[Severity]:
        """The highest severity present, ``None`` for a clean report."""
        if not self.entries:
            return None
        return max(
            (diagnostic.severity for _, diagnostic in self.entries),
            key=lambda severity: severity.rank,
        )

    @property
    def exit_code(self) -> int:
        """0 clean/info-only, 1 max warning, 2 max error."""
        worst = self.max_severity
        if worst is Severity.ERROR:
            return EXIT_ERROR
        if worst is Severity.WARNING:
            return EXIT_WARNING
        return EXIT_CLEAN

    def count(self, severity: Severity) -> int:
        """Number of diagnostics at exactly ``severity``."""
        return sum(
            1
            for _, diagnostic in self.entries
            if diagnostic.severity is severity
        )

    def by_code(self, code: str) -> List[Diagnostic]:
        """Diagnostics whose code starts with ``code``."""
        return [
            diagnostic
            for _, diagnostic in self.entries
            if diagnostic.code.startswith(code)
        ]

    def summary(self) -> str:
        """One-line count footer for the text emitter."""
        errors = self.count(Severity.ERROR)
        warnings = self.count(Severity.WARNING)
        infos = self.count(Severity.INFO)
        text = (
            f"{len(self.entries)} finding(s): {errors} error(s), "
            f"{warnings} warning(s), {infos} info(s) across "
            f"{self.scanned_modules} module(s)"
        )
        if self.suppressed:
            text += f"; {self.suppressed} suppressed inline"
        if self.baselined:
            text += f"; {self.baselined} baselined"
        return text


def _diagnostic(rule: DevRule, finding: DevFinding) -> Diagnostic:
    return Diagnostic(
        code=rule.code,
        name=rule.name,
        severity=rule.severity,
        message=finding.message,
        fixit=finding.fixit,
        line=finding.line,
    )


def run_devlint(
    paths: Sequence[Path],
    config: Optional[DevConfig] = None,
    modules: Optional[List[SourceModule]] = None,
) -> DevReport:
    """Analyze every ``.py`` file under ``paths`` and report findings.

    ``modules`` lets tests inject pre-built
    :class:`~repro.devlint.context.SourceModule` fixtures instead of
    touching the filesystem.
    """
    config = config or DevConfig()
    if modules is None:
        modules = collect_modules(list(paths))
    context = DevContext(
        modules,
        registry_names=config.registry_names,
        project_root=config.project_root,
    )
    report = DevReport(scanned_modules=len(modules))
    raw: List[Tuple[str, Diagnostic]] = []

    if config.enabled(CODE_PARSE_ERROR):
        for module in modules:
            if module.parse_error is None:
                continue
            raw.append(
                (
                    module.relpath,
                    Diagnostic(
                        code=CODE_PARSE_ERROR,
                        name="unparsable-module",
                        severity=Severity.ERROR,
                        message=(
                            "file could not be parsed: "
                            f"{module.parse_error}"
                        ),
                    ),
                )
            )

    checked: List[str] = []
    for rule in all_dev_rules():
        if not config.enabled(rule.code):
            continue
        checked.append(rule.code)
        if rule.scope == SCOPE_PROJECT:
            findings: Iterable[DevFinding] = rule.check(context)  # type: ignore[call-arg, arg-type]
            for finding in findings:
                artifact = (
                    finding.module.relpath
                    if finding.module is not None
                    else PROJECT_ARTIFACT
                )
                raw.append((artifact, _diagnostic(rule, finding)))
            continue
        for module in modules:
            if module.tree is None:
                continue
            for finding in rule.check(module, context):  # type: ignore[call-arg, arg-type]
                if module.is_suppressed(finding.line, rule.code):
                    report.suppressed += 1
                    continue
                raw.append((module.relpath, _diagnostic(rule, finding)))

    if config.enabled(CODE_STALE_SUPPRESSION):
        for module in modules:
            for line, code in module.unused_suppressions():
                if not config.enabled(code):
                    # Suppressions for rules this run did not execute
                    # cannot be judged stale.
                    continue
                raw.append(
                    (
                        module.relpath,
                        Diagnostic(
                            code=CODE_STALE_SUPPRESSION,
                            name="stale-suppression",
                            severity=Severity.ERROR,
                            message=(
                                f"suppression of {code} on line "
                                f"{line} masks no finding; remove it"
                            ),
                            line=line,
                        ),
                    )
                )

    kept: List[Tuple[str, Diagnostic]] = []
    for artifact, diagnostic in raw:
        if (
            config.use_baseline
            and config.baseline is not None
            and config.baseline.matches(artifact, diagnostic)
        ):
            report.baselined += 1
            continue
        kept.append((artifact, diagnostic))
    kept.sort(
        key=lambda entry: (
            entry[0],
            entry[1].code,
            entry[1].line or 0,
            entry[1].message,
        )
    )
    report.entries = kept
    report.checked_rules = tuple(checked)
    return report


def rules_for_report(report: DevReport) -> List[DevRule]:
    """The :class:`DevRule` objects the report actually checked."""
    by_code = {rule.code: rule for rule in all_dev_rules()}
    return [
        by_code[code] for code in report.checked_rules if code in by_code
    ]


__all__ = [
    "PROJECT_ARTIFACT",
    "CODE_PARSE_ERROR",
    "CODE_STALE_SUPPRESSION",
    "DevConfig",
    "DevReport",
    "run_devlint",
    "rules_for_report",
]
