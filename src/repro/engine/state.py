"""Per-run control-flow state for the workflow engine.

Tracks, for one process execution, which incoming-edge verdicts each
activity has received and which activities have been dispatched, executed,
or killed by dead-path elimination.  The engine drives this state machine;
keeping it separate makes the join logic unit-testable without a clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.model.process import ProcessModel

Edge = Tuple[str, str]

#: Activity lifecycle states.
PENDING = "pending"     # waiting for incoming verdicts
READY = "ready"         # all verdicts in, at least one true; queued
RUNNING = "running"     # dispatched to an agent
DONE = "done"           # terminated; output recorded
DEAD = "dead"           # all verdicts in, none true; dead path


@dataclass
class RunState:
    """Control-flow state of one execution of ``model``.

    The state machine is purely about *verdicts*: every edge ``(u, v)``
    eventually carries ``True`` (control flows) or ``False`` (dead path).
    An activity fires when its verdicts are complete and at least one is
    true, and is killed — propagating ``False`` onward — when they are
    complete and all false.
    """

    model: ProcessModel
    status: Dict[str, str] = field(default_factory=dict)
    verdicts: Dict[Edge, bool] = field(default_factory=dict)
    outputs: Dict[str, Tuple[float, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.model.activity_names:
            self.status[name] = PENDING

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def verdicts_complete(self, activity: str) -> bool:
        """Whether every incoming edge of ``activity`` has a verdict."""
        return all(
            (source, activity) in self.verdicts
            for source in self.model.predecessors(activity)
        )

    def any_true_verdict(self, activity: str) -> bool:
        """Whether some incoming edge of ``activity`` carries ``True``."""
        return any(
            self.verdicts.get((source, activity), False)
            for source in self.model.predecessors(activity)
        )

    def is_finished(self) -> bool:
        """Whether every activity is done or dead."""
        return all(s in (DONE, DEAD) for s in self.status.values())

    def executed_activities(self) -> List[str]:
        """Names of activities that actually ran."""
        return [a for a, s in self.status.items() if s == DONE]

    def pending_activities(self) -> List[str]:
        """Names of activities still awaiting verdicts or execution."""
        return [
            a
            for a, s in self.status.items()
            if s in (PENDING, READY, RUNNING)
        ]

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def record_verdict(self, edge: Edge, verdict: bool) -> Optional[str]:
        """Record a verdict; return the target's new state if it settled.

        Returns ``READY`` when the target just became ready, ``DEAD`` when
        it was just killed, and ``None`` when it is still waiting (or was
        already settled).
        """
        self.verdicts[edge] = verdict
        target = edge[1]
        if self.status[target] != PENDING:
            return None
        if not self.verdicts_complete(target):
            return None
        if self.any_true_verdict(target):
            self.status[target] = READY
            return READY
        self.status[target] = DEAD
        return DEAD

    def mark_running(self, activity: str) -> None:
        """Transition a READY activity to RUNNING."""
        if self.status[activity] != READY:
            raise ValueError(
                f"activity {activity!r} is {self.status[activity]}, "
                f"cannot dispatch"
            )
        self.status[activity] = RUNNING

    def mark_source_ready(self) -> None:
        """Make the initiating activity ready (it has no incoming edges)."""
        self.status[self.model.source] = READY

    def mark_done(
        self, activity: str, output: Tuple[float, ...]
    ) -> None:
        """Record an activity's termination and output."""
        if self.status[activity] != RUNNING:
            raise ValueError(
                f"activity {activity!r} is {self.status[activity]}, "
                f"cannot complete"
            )
        self.status[activity] = DONE
        self.outputs[activity] = output

    def dead_path_targets(self, activity: str) -> Set[str]:
        """Outgoing neighbours of a dead activity (all get False verdicts)."""
        return self.model.successors(activity)
