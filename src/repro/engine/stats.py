"""Simulation statistics: what the engine knows that logs don't show.

The event log records only START/END events; the engine additionally
knows which activities were killed by dead-path elimination, how long
agents were busy, and how work queued.  :class:`RunStats` captures that
per execution and :class:`SimulationStats` aggregates a whole log's
worth — the operational view a workflow owner uses to size the agent
pool (Section 2's "queue to be executed by the next available agent").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class RunStats:
    """Operational statistics of one simulated execution.

    Attributes
    ----------
    executed:
        Activities that ran.
    dead:
        Activities killed by dead-path elimination.
    makespan:
        First START to last END, in simulated time.
    busy_time:
        Total agent-busy time (sum of activity durations).
    queue_waits:
        Per dispatched activity, time spent waiting for a free agent.
    """

    executed: int = 0
    dead: int = 0
    makespan: float = 0.0
    busy_time: float = 0.0
    queue_waits: List[float] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Busy time over (makespan × agents) requires the pool size;
        exposed at the aggregate level where the config is known."""
        return self.busy_time

    @property
    def max_queue_wait(self) -> float:
        """Longest wait for an agent in this run (0.0 if none waited)."""
        return max(self.queue_waits, default=0.0)


@dataclass(frozen=True)
class SimulationStats:
    """Aggregate statistics over a simulated log.

    Attributes
    ----------
    runs:
        Number of executions simulated.
    agents:
        Agent-pool capacity used.
    executed_total, dead_total:
        Activity counts across all runs.
    mean_makespan:
        Average execution makespan.
    mean_utilization:
        Average of per-run ``busy_time / (makespan * agents)`` — how
        much of the pool's capacity the process actually used.
    mean_queue_wait:
        Average wait for an agent across all dispatches (0 when the
        pool never saturated).
    dead_path_rate:
        Fraction of activity instances eliminated as dead paths.
    """

    runs: int
    agents: int
    executed_total: int
    dead_total: int
    mean_makespan: float
    mean_utilization: float
    mean_queue_wait: float
    dead_path_rate: float

    @classmethod
    def aggregate(
        cls, per_run: List[RunStats], agents: int
    ) -> "SimulationStats":
        """Fold per-run statistics into the aggregate view."""
        if not per_run:
            return cls(0, agents, 0, 0, 0.0, 0.0, 0.0, 0.0)
        executed = sum(r.executed for r in per_run)
        dead = sum(r.dead for r in per_run)
        makespans = [r.makespan for r in per_run]
        utilizations = [
            r.busy_time / (r.makespan * agents)
            for r in per_run
            if r.makespan > 0
        ]
        waits = [w for r in per_run for w in r.queue_waits]
        return cls(
            runs=len(per_run),
            agents=agents,
            executed_total=executed,
            dead_total=dead,
            mean_makespan=sum(makespans) / len(makespans),
            mean_utilization=(
                sum(utilizations) / len(utilizations)
                if utilizations
                else 0.0
            ),
            mean_queue_wait=sum(waits) / len(waits) if waits else 0.0,
            dead_path_rate=(
                dead / (executed + dead) if executed + dead else 0.0
            ),
        )

    def describe(self) -> str:
        """One-paragraph operational summary."""
        return (
            f"{self.runs} runs on {self.agents} agents: "
            f"mean makespan {self.mean_makespan:.2f}, "
            f"utilization {self.mean_utilization:.0%}, "
            f"mean queue wait {self.mean_queue_wait:.3f}, "
            f"dead-path rate {self.dead_path_rate:.0%}"
        )


def pool_sizing_table(
    model,
    executions: int = 50,
    agent_range: Tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 0,
) -> Dict[int, SimulationStats]:
    """Simulate ``model`` at several pool sizes and report the stats.

    The classic sizing question: where does adding agents stop reducing
    makespan?  Returns ``{agents: SimulationStats}``.
    """
    from repro.engine.simulator import SimulationConfig, WorkflowSimulator

    results: Dict[int, SimulationStats] = {}
    for agents in agent_range:
        simulator = WorkflowSimulator(
            model, SimulationConfig(agents=agents, seed=seed)
        )
        _, stats = simulator.run_log_with_stats(executions)
        results[agents] = stats
    return results
