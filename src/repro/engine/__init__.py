"""Flowmark-style workflow engine simulator.

The paper's logs come from an IBM Flowmark installation; this subpackage is
the substitute substrate (see DESIGN.md §5).  It executes a
:class:`~repro.model.process.ProcessModel` with the Section 2 semantics:

* when an activity terminates, its output ``o(u)`` is computed and the
  Boolean functions on its outgoing edges are evaluated on that output;
* a successor is *ready* once all its incoming edges carry a verdict and at
  least one is true (OR-join with dead-path elimination, so the sink always
  terminates the run — mirroring Flowmark's dead-path mechanism);
* ready activities wait in a queue for "the next available agent"
  (a configurable agent pool; more than one agent yields genuinely
  overlapping activities in the log).

The engine requires an acyclic model, matching both Flowmark's process
language and the paper's observation that acyclicity "is frequently the
case in practice"; cyclic *logs* for Algorithm 3 are produced by the
random-walk generator in :mod:`repro.datasets.cyclic`.
"""

from repro.engine.scheduler import AgentPool, SimulationClock
from repro.engine.simulator import SimulationConfig, WorkflowSimulator
from repro.engine.stats import (
    RunStats,
    SimulationStats,
    pool_sizing_table,
)

__all__ = [
    "AgentPool",
    "RunStats",
    "SimulationClock",
    "SimulationConfig",
    "SimulationStats",
    "WorkflowSimulator",
    "pool_sizing_table",
]
