"""Simulated clock and agent pool.

Section 2: a ready activity "is inserted into a queue to be executed by the
next available agent".  The scheduler is a classic discrete-event core:

* :class:`SimulationClock` — a monotone simulated clock with a tiny
  per-event skew so no two events share a timestamp (the paper assumes "no
  two activities start at the same time");
* :class:`AgentPool` — ``capacity`` agents; ready work waits FIFO when all
  agents are busy.  Capacity 1 serializes every run; larger capacities
  produce genuinely overlapping activity intervals in the log, which is
  what exercises the miners' interval-order handling.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

#: Minimal separation between any two event timestamps.
TIME_SKEW = 1e-6


class SimulationClock:
    """A monotone simulated clock issuing strictly increasing timestamps."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._last_issued = start - TIME_SKEW

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` (never backwards)."""
        if time > self._now:
            self._now = time

    def issue(self) -> float:
        """Return a unique timestamp at (or just after) the current time."""
        stamp = max(self._now, self._last_issued + TIME_SKEW)
        self._last_issued = stamp
        return stamp


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """A time-ordered queue of simulation callbacks."""

    def __init__(self) -> None:
        self._heap: List[_ScheduledEvent] = []
        self._counter = itertools.count()

    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to fire at simulated ``time``."""
        heapq.heappush(
            self._heap, _ScheduledEvent(time, next(self._counter), action)
        )

    def pop(self) -> Optional[Tuple[float, Callable[[], None]]]:
        """Pop the earliest event, or ``None`` when the queue is empty."""
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        return event.time, event.action

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class AgentPool:
    """A fixed pool of agents executing queued activities FIFO.

    The pool does not know about activities; it hands out and reclaims
    *slots*.  The simulator asks :meth:`acquire` when work becomes ready
    and calls :meth:`release` when an activity terminates; work that found
    no free agent waits in :attr:`backlog` until a release.
    """

    def __init__(self, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("agent pool capacity must be >= 1")
        self.capacity = capacity
        self._busy = 0
        self.backlog: List[str] = []

    @property
    def busy(self) -> int:
        """Number of agents currently executing an activity."""
        return self._busy

    @property
    def idle(self) -> int:
        """Number of free agents."""
        return self.capacity - self._busy

    def acquire(self) -> bool:
        """Try to claim an agent; returns whether one was free."""
        if self._busy >= self.capacity:
            return False
        self._busy += 1
        return True

    def release(self) -> None:
        """Return an agent to the pool."""
        if self._busy <= 0:
            raise RuntimeError("release() without a matching acquire()")
        self._busy -= 1

    def enqueue(self, activity: str) -> None:
        """Put a ready activity at the end of the wait queue."""
        self.backlog.append(activity)

    def next_waiting(self) -> Optional[str]:
        """Pop the longest-waiting activity, or ``None``."""
        if self.backlog:
            return self.backlog.pop(0)
        return None
