"""The workflow simulator: executes process models into event logs.

:class:`WorkflowSimulator` drives a discrete-event simulation of one
:class:`~repro.model.process.ProcessModel` per run:

1. the initiating activity is dispatched at time 0;
2. when an activity terminates, its output is sampled (Definition 1's
   ``o(u)``) and each outgoing edge's Boolean condition is evaluated on it;
3. each successor whose incoming verdicts are complete either becomes ready
   (some verdict true) or is killed, propagating false verdicts onward —
   dead-path elimination, which guarantees the sink always settles;
4. ready activities queue for the agent pool; each run for their activity's
   (slightly jittered) duration, producing the START/END records of
   Definition 2.

Every run of a valid acyclic model terminates with the sink executed; a
model bug (e.g. an unreachable join) raises :class:`DeadlockError` rather
than looping.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.scheduler import AgentPool, EventQueue, SimulationClock
from repro.engine.state import DEAD, DONE, READY, RunState
from repro.engine.stats import RunStats, SimulationStats
from repro.errors import DeadlockError
from repro.logs.event_log import EventLog
from repro.logs.events import EventRecord, end_event, start_event
from repro.logs.execution import Execution
from repro.model.process import ProcessModel
from repro.model.validate import validate_process


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for the simulator.

    Attributes
    ----------
    agents:
        Agent-pool capacity; values above 1 let independent activities
        overlap in time.
    duration_jitter:
        Relative jitter applied to each activity's nominal duration
        (uniform in ``[1 - j, 1 + j]``); breaks symmetric schedules so
        independent activities are observed in both orders across runs.
    duration_log_range:
        When set to ``(low, high)``, durations are instead multiplied by a
        log-uniform factor in that range.  Heavy-tailed durations matter
        for mining fidelity: independent activities sitting at different
        depths of parallel branches are only observed in both orders when
        a shallow activity occasionally outlasts a whole deeper chain.
    seed:
        Master RNG seed; run ``i`` uses a child seed derived from it, so
        whole logs are reproducible.
    """

    agents: int = 2
    duration_jitter: float = 0.25
    duration_log_range: Optional[Tuple[float, float]] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.agents < 1:
            raise ValueError("agents must be >= 1")
        if not 0.0 <= self.duration_jitter < 1.0:
            raise ValueError("duration_jitter must be in [0, 1)")
        if self.duration_log_range is not None:
            low, high = self.duration_log_range
            if not 0 < low <= high:
                raise ValueError(
                    "duration_log_range must satisfy 0 < low <= high"
                )


class WorkflowSimulator:
    """Execute a process model repeatedly, producing an event log.

    Parameters
    ----------
    model:
        The process to execute.  Must validate as acyclic — the engine is
        the Flowmark substitute and Flowmark's process graphs are acyclic
        (cyclic *logs* come from :mod:`repro.datasets.cyclic`).
    config:
        Simulation parameters.

    Examples
    --------
    >>> from repro.model.builder import ProcessBuilder
    >>> model = ProcessBuilder("demo").chain("A", "B", "E").build()
    >>> log = WorkflowSimulator(model).run_log(3)
    >>> [list(execution) for execution in log]
    [['A', 'B', 'E'], ['A', 'B', 'E'], ['A', 'B', 'E']]
    """

    def __init__(
        self,
        model: ProcessModel,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        validate_process(model, require_acyclic=True).raise_if_invalid()
        self.model = model
        self.config = config or SimulationConfig()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_log(
        self, executions: int, process_name: Optional[str] = None
    ) -> EventLog:
        """Simulate ``executions`` runs and return them as one log."""
        if executions < 0:
            raise ValueError("executions must be >= 0")
        name = process_name or self.model.name
        log = EventLog(process_name=name)
        for index in range(executions):
            log.append(self.run_once(f"{name}-{index:06d}", run_index=index))
        return log

    def run_log_with_stats(
        self, executions: int, process_name: Optional[str] = None
    ) -> tuple:
        """Like :meth:`run_log`, additionally returning aggregate
        :class:`~repro.engine.stats.SimulationStats` (agent utilization,
        queue waits, dead-path rate)."""
        if executions < 0:
            raise ValueError("executions must be >= 0")
        name = process_name or self.model.name
        log = EventLog(process_name=name)
        per_run: List[RunStats] = []
        for index in range(executions):
            stats = RunStats()
            log.append(
                self.run_once(
                    f"{name}-{index:06d}", run_index=index, stats=stats
                )
            )
            per_run.append(stats)
        return log, SimulationStats.aggregate(
            per_run, self.config.agents
        )

    def run_once(
        self,
        execution_id: str = "run-000000",
        run_index: int = 0,
        stats: Optional[RunStats] = None,
    ) -> Execution:
        """Simulate a single execution and return its trace.

        When ``stats`` is given, operational counters (agent busy time,
        queue waits, dead-path kills, makespan) are written into it.

        Raises
        ------
        DeadlockError
            If the simulation stalls before every activity settles — which
            indicates a model or engine bug, never a legal outcome.
        """
        rng = random.Random(f"{self.config.seed}:{run_index}")
        clock = SimulationClock()
        queue = EventQueue()
        pool = AgentPool(self.config.agents)
        state = RunState(self.model)
        records: List[EventRecord] = []
        park_times: dict = {}

        def dispatch(activity: str) -> None:
            """Give a ready activity to an agent (or park it)."""
            if not pool.acquire():
                pool.enqueue(activity)
                park_times[activity] = clock.now
                return
            state.mark_running(activity)
            start_time = clock.issue()
            if stats is not None:
                stats.queue_waits.append(
                    max(
                        0.0,
                        start_time - park_times.pop(activity, start_time),
                    )
                )
            records.append(
                start_event(execution_id, activity, start_time)
            )
            duration = self._sample_duration(activity, rng)
            if stats is not None:
                stats.busy_time += duration
            queue.schedule(
                start_time + duration,
                lambda: complete(activity, start_time + duration),
            )

        def complete(activity: str, finish_time: float) -> None:
            """Terminate an activity: log END, evaluate edge conditions."""
            clock.advance_to(finish_time)
            output = self.model.activity(activity).sample_output(rng)
            records.append(
                end_event(
                    execution_id, activity, clock.issue(), output=output
                )
            )
            state.mark_done(activity, output)
            pool.release()
            for target in sorted(self.model.successors(activity)):
                condition = self.model.condition(activity, target)
                settle(
                    activity, target, bool(condition.evaluate(output))
                )
            if pool.idle > 0:
                waiting = pool.next_waiting()
                if waiting is not None:
                    dispatch(waiting)

        def settle(source: str, target: str, verdict: bool) -> None:
            """Record an edge verdict and react to the target settling."""
            outcome = state.record_verdict((source, target), verdict)
            if outcome == READY:
                dispatch(target)
            elif outcome == DEAD:
                # Dead-path elimination: propagate false onward.
                for follower in sorted(state.dead_path_targets(target)):
                    settle(target, follower, False)

        state.mark_source_ready()
        dispatch(self.model.source)

        while True:
            item = queue.pop()
            if item is None:
                break
            time, action = item
            clock.advance_to(time)
            action()

        if not state.is_finished():
            raise DeadlockError(
                f"execution {execution_id!r} stalled",
                pending=state.pending_activities(),
            )
        if stats is not None:
            stats.executed = sum(
                1 for s in state.status.values() if s == DONE
            )
            stats.dead = sum(
                1 for s in state.status.values() if s == DEAD
            )
            if records:
                stats.makespan = max(
                    r.timestamp for r in records
                ) - min(r.timestamp for r in records)
        return Execution(execution_id, records)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sample_duration(self, activity: str, rng: random.Random) -> float:
        nominal = self.model.activity(activity).duration
        jitter = self.config.duration_jitter
        if nominal <= 0:
            # Instantaneous activities still occupy a sliver of time so
            # START precedes END.
            return 1e-3
        if self.config.duration_log_range is not None:
            low, high = self.config.duration_log_range
            factor = math.exp(
                rng.uniform(math.log(low), math.log(high))
            )
            return nominal * factor
        if jitter == 0:
            return nominal
        return nominal * rng.uniform(1.0 - jitter, 1.0 + jitter)
