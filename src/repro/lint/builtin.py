"""The shipped lint rules.

Three code blocks, documented in ``docs/LINTING.md``:

``PM1xx`` — structure (Definitions 5–7, Theorem 1):
    PM101 source-has-incoming, PM102 sink-has-outgoing,
    PM103 extra-source, PM104 extra-sink, PM105 unreachable-activity,
    PM106 cannot-reach-sink, PM107 disconnected-component,
    PM108 redundant-transitive-edge, PM109 two-cycle, PM110 cycle.

``PM2xx`` — semantics of edge conditions (Section 7):
    PM201 unsatisfiable-condition, PM202 vacuous-condition,
    PM203 invalid-output-reference, PM204 dead-end-guards.

``PM3xx`` — log-vs-model (Sections 4 and 6):
    PM301 unexercised-edge, PM302 low-support-edge,
    PM303 unknown-log-activity, PM304 unobserved-activity,
    PM305 condition-never-observed.

Every rule yields :class:`~repro.lint.diagnostics.Finding` values; the
engine stamps codes and severities.  Rules sort their findings so
reports are deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.diagnostics import (
    Finding,
    Severity,
    activity_location,
    edge_location,
    model_location,
)
from repro.lint.rules import LintContext, rule
from repro.lint.satisfiability import (
    is_satisfiable,
    is_tautology,
    referenced_indices,
)
from repro.model.conditions import Always, Condition, Never, Or

Edge = Tuple[str, str]


def _sorted_edges(edges: Set[Edge]) -> List[Edge]:
    return sorted(edges)


# ---------------------------------------------------------------------------
# PM1xx — structure
# ---------------------------------------------------------------------------
@rule(
    "PM101",
    "source-has-incoming",
    Severity.ERROR,
    "the designated source activity has incoming edges",
)
def check_source_has_incoming(ctx: LintContext) -> Iterator[Finding]:
    source = ctx.model.source
    for predecessor in sorted(ctx.graph.predecessors(source)):
        yield Finding(
            location=edge_location(predecessor, source),
            message=(
                f"source activity {source!r} has an incoming edge from "
                f"{predecessor!r}; an initiating activity starts every "
                f"execution and can have none"
            ),
            fixit=f"remove edge {predecessor} -> {source}",
        )


@rule(
    "PM102",
    "sink-has-outgoing",
    Severity.ERROR,
    "the designated sink activity has outgoing edges",
)
def check_sink_has_outgoing(ctx: LintContext) -> Iterator[Finding]:
    sink = ctx.model.sink
    for successor in sorted(ctx.graph.successors(sink)):
        yield Finding(
            location=edge_location(sink, successor),
            message=(
                f"sink activity {sink!r} has an outgoing edge to "
                f"{successor!r}; a terminating activity ends every "
                f"execution and can have none"
            ),
            fixit=f"remove edge {sink} -> {successor}",
        )


@rule(
    "PM103",
    "extra-source",
    Severity.ERROR,
    "an activity other than the source has no incoming edges",
)
def check_extra_source(ctx: LintContext) -> Iterator[Finding]:
    for name in ctx.graph.nodes():
        if name != ctx.model.source and ctx.graph.in_degree(name) == 0:
            yield Finding(
                location=activity_location(name),
                message=(
                    f"activity {name!r} has no incoming edges but is not "
                    f"the source ({ctx.model.source!r}); the process "
                    f"would have multiple initiating activities"
                ),
                fixit=(
                    f"connect {name} below the source or remove it"
                ),
            )


@rule(
    "PM104",
    "extra-sink",
    Severity.ERROR,
    "an activity other than the sink has no outgoing edges",
)
def check_extra_sink(ctx: LintContext) -> Iterator[Finding]:
    for name in ctx.graph.nodes():
        if name != ctx.model.sink and ctx.graph.out_degree(name) == 0:
            yield Finding(
                location=activity_location(name),
                message=(
                    f"activity {name!r} has no outgoing edges but is not "
                    f"the sink ({ctx.model.sink!r}); the process would "
                    f"have multiple terminating activities"
                ),
                fixit=f"connect {name} toward the sink or remove it",
            )


@rule(
    "PM105",
    "unreachable-activity",
    Severity.ERROR,
    "an activity is not reachable from the source",
)
def check_unreachable(ctx: LintContext) -> Iterator[Finding]:
    reachable = ctx.reachable_from_source
    for name in ctx.graph.nodes():
        if name not in reachable:
            yield Finding(
                location=activity_location(name),
                message=(
                    f"activity {name!r} is not reachable from the source "
                    f"{ctx.model.source!r} and can never execute "
                    f"(Definition 6)"
                ),
                fixit=f"remove activity {name} or connect it to the flow",
            )


@rule(
    "PM106",
    "cannot-reach-sink",
    Severity.ERROR,
    "an activity has no path to the sink",
)
def check_cannot_reach_sink(ctx: LintContext) -> Iterator[Finding]:
    reaching = ctx.reaching_sink
    for name in ctx.graph.nodes():
        if name not in reaching:
            yield Finding(
                location=activity_location(name),
                message=(
                    f"activity {name!r} cannot reach the sink "
                    f"{ctx.model.sink!r}; an execution entering it could "
                    f"never terminate"
                ),
                fixit=f"remove activity {name} or connect it to the flow",
            )


@rule(
    "PM107",
    "disconnected-component",
    Severity.ERROR,
    "the control-flow graph has more than one weakly connected component",
)
def check_disconnected(ctx: LintContext) -> Iterator[Finding]:
    component = _weak_component(ctx, ctx.model.source)
    stranded = [n for n in ctx.graph.nodes() if n not in component]
    if not stranded:
        return
    # Report one finding per disconnected component, anchored at its
    # lexicographically smallest member.
    remaining = set(stranded)
    while remaining:
        anchor = min(remaining)
        members = _weak_component(ctx, anchor) & remaining
        remaining -= members
        listing = ", ".join(repr(m) for m in sorted(members))
        yield Finding(
            location=activity_location(anchor),
            message=(
                f"activities {{{listing}}} form a component disconnected "
                f"from the one containing the source "
                f"{ctx.model.source!r}"
            ),
            fixit="remove the disconnected activities or connect them",
        )


def _weak_component(ctx: LintContext, start: str) -> Set[str]:
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for neighbour in ctx.graph.successors(node) | ctx.graph.predecessors(
            node
        ):
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append(neighbour)
    return seen


@rule(
    "PM108",
    "redundant-transitive-edge",
    Severity.ERROR,
    "an edge is implied by a longer path (minimality violation, Theorem 1)",
)
def check_redundant_edges(ctx: LintContext) -> Iterator[Finding]:
    """Transitively implied edges violate minimality (Theorem 1).

    With a log, minimality means *minimal conformal*: an implied edge
    ``(u, v)`` is still legitimate when some execution skips every
    intermediate activity and needs the direct dependency (Algorithm 2
    keeps exactly the edges marked by step 5's per-execution transitive
    reductions).  Such required edges are exempt; without a log the
    check is the pure structural one.
    """
    reduction = ctx.reduction_edges
    if reduction is None:  # cyclic: reduction not unique, rule not applicable
        return
    coverage = ctx.coverage
    for source, target in _sorted_edges(ctx.graph.edge_set() - reduction):
        if coverage is not None:
            usage = coverage.usage.get((source, target))
            if usage is not None and usage.required > 0:
                continue  # needed by an execution that skips the long path
        yield Finding(
            location=edge_location(source, target),
            message=(
                f"edge {source} -> {target} is redundant: {target!r} is "
                f"already reachable from {source!r} through a longer "
                f"path, and no execution requires the direct edge; a "
                f"minimal conformal model omits it (Theorem 1)"
            ),
            fixit=f"remove edge {source} -> {target}",
        )


@rule(
    "PM109",
    "two-cycle",
    Severity.WARNING,
    "a pair of opposite edges forms a 2-cycle",
    dag_severity=Severity.ERROR,
)
def check_two_cycles(ctx: LintContext) -> Iterator[Finding]:
    severity_note = (
        "Algorithm 2 step 3 removes such pairs as mutually-following "
        "(independent) activities"
    )
    seen: Set[Edge] = set()
    for source, target in _sorted_edges(ctx.graph.edge_set()):
        if (target, source) in seen:
            continue
        if source != target and ctx.graph.has_edge(target, source):
            seen.add((source, target))
            yield Finding(
                location=edge_location(source, target),
                message=(
                    f"edges {source} -> {target} and {target} -> "
                    f"{source} form a 2-cycle; {severity_note}"
                ),
                fixit=(
                    f"remove one of {source} -> {target} / "
                    f"{target} -> {source}"
                ),
            )


@rule(
    "PM110",
    "cycle",
    Severity.WARNING,
    "the control-flow graph contains a directed cycle",
    dag_severity=Severity.ERROR,
)
def check_cycle(ctx: LintContext) -> Iterator[Finding]:
    cycle = ctx.cycle
    if cycle is not None:
        path = " -> ".join(str(node) for node in cycle)
        yield Finding(
            location=model_location(),
            message=(
                f"graph contains a cycle: {path}; the paper's DAG "
                f"algorithms (1 and 2) assume acyclic control flow"
            ),
        )


# ---------------------------------------------------------------------------
# PM2xx — condition semantics
# ---------------------------------------------------------------------------
def _explicit_conditions(ctx: LintContext) -> List[Tuple[Edge, Condition]]:
    return sorted(ctx.model.conditions().items(), key=lambda item: item[0])


def _condition_well_referenced(
    ctx: LintContext, edge: Edge, condition: Condition
) -> bool:
    """Whether every referenced index exists on the edge source's
    output vector (the PM203 precondition for PM201/PM202/PM204)."""
    arity = ctx.model.activity(edge[0]).output_spec.arity
    return all(index < arity for index in referenced_indices(condition))


@rule(
    "PM201",
    "unsatisfiable-condition",
    Severity.ERROR,
    "an edge condition can never be true over the output domain",
)
def check_unsatisfiable(ctx: LintContext) -> Iterator[Finding]:
    for edge, condition in _explicit_conditions(ctx):
        if isinstance(condition, Always):
            continue
        if not _condition_well_referenced(ctx, edge, condition):
            continue  # PM203 reports the real problem
        spec = ctx.model.activity(edge[0]).output_spec
        satisfiable = is_satisfiable(
            condition, spec, ctx.config.max_clauses
        )
        if satisfiable is False:
            yield Finding(
                location=edge_location(*edge),
                message=(
                    f"condition {condition} on edge {edge[0]} -> "
                    f"{edge[1]} is unsatisfiable over {edge[0]!r}'s "
                    f"output domain [{spec.low}, {spec.high}]^"
                    f"{spec.arity}; the edge can never be taken"
                ),
                fixit=(
                    f"fix the condition or remove edge "
                    f"{edge[0]} -> {edge[1]}"
                ),
            )


@rule(
    "PM202",
    "vacuous-condition",
    Severity.INFO,
    "a non-trivial edge condition is always true over the output domain",
)
def check_vacuous(ctx: LintContext) -> Iterator[Finding]:
    for edge, condition in _explicit_conditions(ctx):
        if isinstance(condition, (Always, Never)):
            continue
        if not _condition_well_referenced(ctx, edge, condition):
            continue
        spec = ctx.model.activity(edge[0]).output_spec
        if is_tautology(condition, spec, ctx.config.max_clauses):
            yield Finding(
                location=edge_location(*edge),
                message=(
                    f"condition {condition} on edge {edge[0]} -> "
                    f"{edge[1]} holds for every output in "
                    f"[{spec.low}, {spec.high}]^{spec.arity}; the edge "
                    f"is effectively unconditional"
                ),
                fixit="drop the condition (the edge is unconditional)",
            )


@rule(
    "PM203",
    "invalid-output-reference",
    Severity.ERROR,
    "a condition references an output parameter the source does not produce",
)
def check_output_references(ctx: LintContext) -> Iterator[Finding]:
    for edge, condition in _explicit_conditions(ctx):
        arity = ctx.model.activity(edge[0]).output_spec.arity
        bad = sorted(
            index
            for index in referenced_indices(condition)
            if index >= arity
        )
        if bad:
            refs = ", ".join(f"o[{index}]" for index in bad)
            yield Finding(
                location=edge_location(*edge),
                message=(
                    f"condition {condition} on edge {edge[0]} -> "
                    f"{edge[1]} references {refs}, but activity "
                    f"{edge[0]!r} produces only {arity} output "
                    f"parameter(s); evaluation would fail at run time"
                ),
                fixit=(
                    f"reference parameters o[0]..o[{arity - 1}] of "
                    f"{edge[0]}"
                    if arity
                    else f"give {edge[0]} an output or drop the condition"
                ),
            )


@rule(
    "PM204",
    "dead-end-guards",
    Severity.ERROR,
    "no outgoing edge of an activity can ever fire",
)
def check_dead_end_guards(ctx: LintContext) -> Iterator[Finding]:
    for name in ctx.graph.nodes():
        successors = sorted(ctx.graph.successors(name))
        if not successors:
            continue
        disjunction: Condition = Never()
        well_referenced = True
        for successor in successors:
            condition = ctx.model.condition(name, successor)
            if not _condition_well_referenced(
                ctx, (name, successor), condition
            ):
                well_referenced = False
                break
            disjunction = Or(disjunction, condition)
        if not well_referenced:
            continue
        spec = ctx.model.activity(name).output_spec
        if (
            is_satisfiable(disjunction, spec, ctx.config.max_clauses)
            is False
        ):
            edges = ", ".join(f"{name} -> {s}" for s in successors)
            yield Finding(
                location=activity_location(name),
                message=(
                    f"the outgoing conditions of {name!r} are jointly "
                    f"unsatisfiable ({edges}); every execution reaching "
                    f"{name!r} stalls before the sink"
                ),
                fixit=f"relax one outgoing condition of {name}",
            )


# ---------------------------------------------------------------------------
# PM3xx — log vs model
# ---------------------------------------------------------------------------
@rule(
    "PM301",
    "unexercised-edge",
    Severity.WARNING,
    "no execution in the log required the edge",
    requires_log=True,
)
def check_unexercised(ctx: LintContext) -> Iterator[Finding]:
    coverage = ctx.coverage
    if coverage is None:
        return
    for edge in coverage.unexercised():
        usage = coverage.usage[edge]
        yield Finding(
            location=edge_location(*edge),
            message=(
                f"edge {edge[0]} -> {edge[1]} was required by none of "
                f"the {coverage.executions} executions "
                f"(compatible with {usage.compatible}); the log gives "
                f"no evidence for it"
            ),
            fixit=f"remove edge {edge[0]} -> {edge[1]} or gather more logs",
        )


@rule(
    "PM302",
    "low-support-edge",
    Severity.WARNING,
    "an edge's support is below the Section 6 noise threshold",
    requires_log=True,
)
def check_low_support(ctx: LintContext) -> Iterator[Finding]:
    threshold = ctx.config.noise_threshold
    coverage = ctx.coverage
    if threshold <= 0 or coverage is None:
        return
    for edge in sorted(coverage.usage):
        required = coverage.usage[edge].required
        if 0 < required < threshold:
            yield Finding(
                location=edge_location(*edge),
                message=(
                    f"edge {edge[0]} -> {edge[1]} is required by only "
                    f"{required} execution(s), below the noise "
                    f"threshold T={threshold} (Section 6); it may be an "
                    f"artefact of noisy ordering"
                ),
                fixit=(
                    f"re-mine with --threshold {threshold} or gather "
                    f"more logs"
                ),
            )


@rule(
    "PM303",
    "unknown-log-activity",
    Severity.WARNING,
    "the log performs an activity the model does not contain",
    requires_log=True,
)
def check_unknown_log_activity(ctx: LintContext) -> Iterator[Finding]:
    model_activities = set(ctx.model.activity_names)
    for name in sorted(ctx.log_activities - model_activities):
        yield Finding(
            location=activity_location(name),
            message=(
                f"the log performs activity {name!r} but the model does "
                f"not contain it; the model cannot be conformal with "
                f"this log (Definition 7)"
            ),
            fixit=f"add activity {name} to the model or re-mine",
        )


@rule(
    "PM304",
    "unobserved-activity",
    Severity.INFO,
    "a model activity never appears in the log",
    requires_log=True,
)
def check_unobserved_activity(ctx: LintContext) -> Iterator[Finding]:
    if ctx.log is None or len(ctx.log) == 0:
        return
    for name in sorted(set(ctx.model.activity_names) - ctx.log_activities):
        yield Finding(
            location=activity_location(name),
            message=(
                f"activity {name!r} never appears in any of the "
                f"{len(ctx.log)} logged executions; the log carries no "
                f"evidence it is still part of the process"
            ),
        )


@rule(
    "PM305",
    "condition-never-observed",
    Severity.WARNING,
    "no observed output of the source activity satisfies the condition",
    requires_log=True,
)
def check_condition_never_observed(ctx: LintContext) -> Iterator[Finding]:
    for edge, condition in _explicit_conditions(ctx):
        if isinstance(condition, (Always, Never)):
            continue
        if not _condition_well_referenced(ctx, edge, condition):
            continue
        observed = ctx.observed_outputs(edge[0])
        arity = ctx.model.activity(edge[0]).output_spec.arity
        usable = [o for o in observed if len(o) >= arity]
        if not usable:
            continue  # no evidence either way (e.g. Flowmark logs)
        if not any(condition.evaluate(output) for output in usable):
            yield Finding(
                location=edge_location(*edge),
                message=(
                    f"condition {condition} on edge {edge[0]} -> "
                    f"{edge[1]} is satisfied by none of the "
                    f"{len(usable)} observed output vector(s) of "
                    f"{edge[0]!r}; the guarded branch never fires in "
                    f"practice"
                ),
                fixit=(
                    f"check the condition against the logged outputs of "
                    f"{edge[0]}"
                ),
            )
