"""Static analysis of process models — the ``repro.lint`` engine.

The paper's central guarantee is that a mined graph is a *minimal
conformal* model (Definitions 5–7, Theorem 1).  This package verifies
that guarantee — and a battery of further structural, semantic, and
log-vs-model properties — *statically*, without executing the model.

A registry of rules with stable diagnostic codes runs over a
:class:`~repro.model.process.ProcessModel` (optionally paired with an
:class:`~repro.logs.event_log.EventLog`) and emits structured
:class:`Diagnostic` values with severities, precise locations, human
messages, and machine-applicable fix-it hints:

* ``PM1xx`` — structure: endpoints, reachability, connectivity,
  minimality (redundant transitive edges), leftover cycles;
* ``PM2xx`` — semantics: unsatisfiable / vacuous / ill-typed edge
  conditions, dead-end guard sets (decided by a difference-constraint
  satisfiability checker over the declared output domain);
* ``PM3xx`` — log-vs-model: unexercised and low-support edges
  (Section 6 noise threshold), unknown/unobserved activities,
  conditions never satisfied by any observed output.

Entry points: :func:`lint_model` runs the engine, :class:`LintConfig`
selects rules and overrides severities, and :mod:`repro.lint.emitters`
renders reports as text, JSON, or SARIF 2.1.0.
"""

from repro.lint.config import LintConfig
from repro.lint.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    activity_location,
    edge_location,
    model_location,
)
from repro.lint.engine import LintReport, lint_model
from repro.lint.rules import LintContext, LintRule, all_rules, get_rule
from repro.lint.satisfiability import is_satisfiable, is_tautology

# Built-in rules register on import.
from repro.lint import builtin as _builtin  # noqa: F401

__all__ = [
    "Diagnostic",
    "Location",
    "Severity",
    "LintConfig",
    "LintContext",
    "LintReport",
    "LintRule",
    "activity_location",
    "all_rules",
    "edge_location",
    "get_rule",
    "is_satisfiable",
    "is_tautology",
    "lint_model",
    "model_location",
]
