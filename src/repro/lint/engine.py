"""The lint engine: run the registry over a model, collect a report.

:func:`lint_model` is the single entry point; everything else —
:mod:`repro.model.validate`, the CLI's ``lint`` subcommand, and the
auto-verification inside ``mine`` — goes through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.rules import LintContext, all_rules
from repro.logs.event_log import EventLog
from repro.model.process import ProcessModel
from repro.obs.recorder import Recorder, resolve_recorder

# Exit codes keyed on max severity (the acceptance contract of the
# ``repro-miner lint`` subcommand).
EXIT_CLEAN = 0
EXIT_WARNING = 1
EXIT_ERROR = 2


@dataclass
class LintReport:
    """Outcome of one lint run.

    Attributes
    ----------
    model_name:
        Name of the linted process.
    diagnostics:
        Findings in deterministic order (code, then location).
    checked_rules:
        Codes of the rules that actually ran (enabled and, for
        log-dependent rules, a log was available).
    """

    model_name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    checked_rules: List[str] = field(default_factory=list)

    @property
    def max_severity(self) -> Optional[Severity]:
        """The highest severity present, ``None`` for a clean report."""
        if not self.diagnostics:
            return None
        return max(
            (d.severity for d in self.diagnostics), key=lambda s: s.rank
        )

    @property
    def exit_code(self) -> int:
        """0 clean/info-only, 1 max warning, 2 max error."""
        worst = self.max_severity
        if worst is Severity.ERROR:
            return EXIT_ERROR
        if worst is Severity.WARNING:
            return EXIT_WARNING
        return EXIT_CLEAN

    @property
    def is_clean(self) -> bool:
        """Whether no diagnostics at all were produced."""
        return not self.diagnostics

    def count(self, severity: Severity) -> int:
        """Number of diagnostics at exactly ``severity``."""
        return sum(1 for d in self.diagnostics if d.severity is severity)

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        """Diagnostics at or above ``severity``."""
        return [
            d for d in self.diagnostics if d.severity.rank >= severity.rank
        ]

    def by_code(self, code: str) -> List[Diagnostic]:
        """Diagnostics whose code starts with ``code``."""
        return [d for d in self.diagnostics if d.code.startswith(code)]

    def summary(self) -> str:
        """One-line count summary (the text emitter's footer)."""
        errors = self.count(Severity.ERROR)
        warnings = self.count(Severity.WARNING)
        infos = self.count(Severity.INFO)
        return (
            f"{len(self.diagnostics)} diagnostic(s): {errors} error(s), "
            f"{warnings} warning(s), {infos} info(s) "
            f"[{len(self.checked_rules)} rules checked]"
        )

    def with_lines(self, line_map: Mapping[Location, int]) -> "LintReport":
        """Return a copy whose diagnostics carry model-file lines."""
        return LintReport(
            model_name=self.model_name,
            diagnostics=[
                d.with_line(line_map.get(d.location)) for d in self.diagnostics
            ],
            checked_rules=list(self.checked_rules),
        )


def lint_model(
    model: ProcessModel,
    log: Optional[EventLog] = None,
    config: Optional[LintConfig] = None,
    recorder: Optional[Recorder] = None,
) -> LintReport:
    """Run every enabled rule over ``model`` (and ``log``, if given).

    Log-dependent rules (``requires_log=True``) are silently skipped
    without a log; everything else about rule selection is governed by
    ``config`` (see :class:`~repro.lint.config.LintConfig`).  An
    enabled ``recorder`` gets a ``lint`` span plus the
    ``repro_lint_findings_total{severity=...}`` /
    ``repro_lint_rules_checked_total`` counters.

    Examples
    --------
    >>> from repro.model.builder import ProcessBuilder
    >>> model = (
    ...     ProcessBuilder("demo")
    ...     .chain("A", "B", "C")
    ...     .edge("A", "C")
    ...     .build()
    ... )
    >>> report = lint_model(model)
    >>> [d.code for d in report.diagnostics]
    ['PM108']
    """
    config = config or LintConfig()
    obs = resolve_recorder(recorder)
    context = LintContext(model, log=log, config=config)
    diagnostics: List[Diagnostic] = []
    checked: List[str] = []
    with obs.span("lint", model=model.name):
        for lint_rule in all_rules():
            if not config.is_enabled(lint_rule.code):
                continue
            if lint_rule.requires_log and log is None:
                continue
            checked.append(lint_rule.code)
            severity = config.effective_severity(
                lint_rule.code,
                lint_rule.default_severity(config.dag_mode),
            )
            for finding in lint_rule.check(context):
                diagnostics.append(
                    Diagnostic(
                        code=lint_rule.code,
                        name=lint_rule.name,
                        severity=severity,
                        message=finding.message,
                        location=finding.location,
                        fixit=finding.fixit,
                    )
                )
    diagnostics.sort(key=lambda d: d.sort_key)
    report = LintReport(
        model_name=model.name,
        diagnostics=diagnostics,
        checked_rules=checked,
    )
    if obs.enabled:
        obs.count("repro_lint_rules_checked_total", len(checked))
        for level in Severity:
            obs.count(
                "repro_lint_findings_total",
                report.count(level),
                labels={"severity": level.value},
            )
    return report


def severity_overrides(mapping: Mapping[str, str]) -> Dict[str, Severity]:
    """Parse ``{"PM301": "error"}``-style override mappings (CLI/config
    surface) into the typed form :class:`LintConfig` expects."""
    return {
        code.strip().upper(): Severity.parse(value)
        for code, value in mapping.items()
    }
