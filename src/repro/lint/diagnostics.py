"""Diagnostic vocabulary: severities, locations, and findings.

A :class:`Diagnostic` is one finding of one rule at one location.  The
vocabulary is deliberately close to SARIF's result model so the
:mod:`repro.lint.emitters` SARIF emitter is a direct translation:
``code`` maps to ``ruleId``, ``severity`` to ``level``, and
:class:`Location` to a logical (activity/edge) plus optional physical
(model-file line) location.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric order for comparisons and exit codes."""
        return _SEVERITY_RANK[self]

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` value for this severity."""
        return "note" if self is Severity.INFO else self.value

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse ``"info" | "warning" | "error"`` (case-insensitive)."""
        try:
            return cls(text.strip().lower())
        except ValueError:
            choices = ", ".join(s.value for s in cls)
            raise ValueError(
                f"unknown severity {text!r}; expected one of {choices}"
            ) from None


_SEVERITY_RANK: Dict[Severity, int] = {
    Severity.INFO: 0,
    Severity.WARNING: 1,
    Severity.ERROR: 2,
}


# Location kinds.
KIND_MODEL = "model"
KIND_ACTIVITY = "activity"
KIND_EDGE = "edge"


@dataclass(frozen=True)
class Location:
    """Where in the model a diagnostic points.

    Attributes
    ----------
    kind:
        ``"model"`` (the process as a whole), ``"activity"``, or
        ``"edge"``.
    activity:
        The activity name for activity locations.
    edge:
        The ``(source, target)`` pair for edge locations.
    """

    kind: str
    activity: Optional[str] = None
    edge: Optional[Tuple[str, str]] = None

    def __str__(self) -> str:
        if self.kind == KIND_ACTIVITY:
            return f"activity {self.activity!r}"
        if self.kind == KIND_EDGE and self.edge is not None:
            return f"edge {self.edge[0]} -> {self.edge[1]}"
        return "model"

    @property
    def sort_key(self) -> Tuple[str, str, str]:
        """Deterministic ordering key (model < activity < edge groups)."""
        if self.kind == KIND_ACTIVITY:
            return ("1", self.activity or "", "")
        if self.kind == KIND_EDGE and self.edge is not None:
            return ("2", self.edge[0], self.edge[1])
        return ("0", "", "")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (omits empty fields)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.activity is not None:
            payload["activity"] = self.activity
        if self.edge is not None:
            payload["edge"] = {"source": self.edge[0], "target": self.edge[1]}
        return payload


def model_location() -> Location:
    """A location naming the process as a whole."""
    return Location(kind=KIND_MODEL)


def activity_location(name: str) -> Location:
    """A location naming one activity."""
    return Location(kind=KIND_ACTIVITY, activity=name)


def edge_location(source: str, target: str) -> Location:
    """A location naming one control-flow edge."""
    return Location(kind=KIND_EDGE, edge=(source, target))


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule.

    Attributes
    ----------
    code:
        Stable diagnostic code (``PM101`` ...).  Codes are documented in
        ``docs/LINTING.md`` and never reused for a different meaning.
    name:
        The rule's kebab-case slug (``redundant-transitive-edge``).
    severity:
        Effective severity after configuration overrides.
    message:
        Human-readable, names the offending activities/edges.
    location:
        Precise logical location inside the model.
    fixit:
        Optional machine-applicable hint (e.g. ``remove edge A -> D``).
    line:
        1-based line in the model file, when the model came from a file
        (attached by :meth:`LintReport.with_lines`).
    """

    code: str
    name: str
    severity: Severity
    message: str
    location: Location = field(default_factory=model_location)
    fixit: Optional[str] = None
    line: Optional[int] = None

    @property
    def sort_key(self) -> Tuple[str, Tuple[str, str, str], str]:
        """Deterministic report ordering: code, then location."""
        return (self.code, self.location.sort_key, self.message)

    def with_line(self, line: Optional[int]) -> "Diagnostic":
        """Return a copy carrying a model-file line number."""
        return replace(self, line=line)

    def with_severity(self, severity: Severity) -> "Diagnostic":
        """Return a copy with an overridden severity."""
        return replace(self, severity=severity)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        payload: Dict[str, Any] = {
            "code": self.code,
            "name": self.name,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_dict(),
        }
        if self.fixit is not None:
            payload["fixit"] = self.fixit
        if self.line is not None:
            payload["line"] = self.line
        return payload

    def render(self, artifact: Optional[str] = None) -> str:
        """One-line text rendering, ``path:line:`` prefixed when known."""
        prefix = ""
        if artifact is not None:
            prefix = f"{artifact}:" if self.line is None else (
                f"{artifact}:{self.line}:"
            )
            prefix += " "
        text = (
            f"{prefix}{self.code} {self.severity.value}: {self.message} "
            f"[{self.location}]"
        )
        if self.fixit is not None:
            text += f" (fix: {self.fixit})"
        return text


@dataclass(frozen=True)
class Finding:
    """What a rule yields: a location, a message, an optional fix-it.

    The engine stamps the rule's code, slug, and (possibly overridden)
    severity to turn findings into :class:`Diagnostic` values, so rule
    bodies stay free of configuration concerns.
    """

    location: Location
    message: str
    fixit: Optional[str] = None
