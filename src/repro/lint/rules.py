"""The rule registry and the shared analysis context.

A lint rule is a function ``(LintContext) -> Iterable[Finding]``
registered under a stable diagnostic code with the :func:`rule`
decorator.  The engine iterates the registry in code order, stamps each
finding with the rule's code/slug and the configured severity, and
collects the resulting :class:`~repro.lint.diagnostics.Diagnostic`\\ s.

:class:`LintContext` carries the model (and optional log) plus lazily
computed, shared derived structures — reachability sets, the transitive
reduction, the coverage report, observed output vectors — so that rules
stay cheap and never recompute each other's work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.coverage import CoverageReport

from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import transitive_reduction_edges
from repro.graphs.traversal import ancestors, descendants, find_cycle
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Finding, Severity
from repro.logs.event_log import EventLog
from repro.model.process import ProcessModel

Edge = Tuple[str, str]
RuleCheck = Callable[["LintContext"], Iterable[Finding]]


class LintContext:
    """Everything a rule may inspect during one lint run.

    Attributes
    ----------
    model:
        The process model under analysis.
    log:
        The event log paired with the model, or ``None`` (log-dependent
        rules are skipped without a log).
    config:
        The active :class:`~repro.lint.config.LintConfig`.
    graph:
        One shared copy of the model's control-flow graph.
    """

    def __init__(
        self,
        model: ProcessModel,
        log: Optional[EventLog] = None,
        config: Optional[LintConfig] = None,
    ) -> None:
        self.model = model
        self.log = log
        self.config = config or LintConfig()
        self.graph: DiGraph = model.graph
        self._cycle: Optional[List[str]] = None
        self._cycle_computed = False
        self._reachable: Optional[Set[str]] = None
        self._reaching: Optional[Set[str]] = None
        self._reduction: Optional[Set[Edge]] = None
        self._reduction_computed = False
        self._coverage: Optional["CoverageReport"] = None
        self._coverage_computed = False
        self._observed: Optional[Dict[str, List[Tuple[float, ...]]]] = None
        self._log_activities: Optional[Set[str]] = None

    # ------------------------------------------------------------------
    # Structural caches
    # ------------------------------------------------------------------
    @property
    def cycle(self) -> Optional[List[str]]:
        """One directed cycle of the graph, or ``None`` when acyclic."""
        if not self._cycle_computed:
            self._cycle = find_cycle(self.graph)
            self._cycle_computed = True
        return self._cycle

    @property
    def is_dag(self) -> bool:
        """Whether the control-flow graph is acyclic."""
        return self.cycle is None

    @property
    def reachable_from_source(self) -> Set[str]:
        """The source plus every activity reachable from it."""
        if self._reachable is None:
            reachable = descendants(self.graph, self.model.source)
            reachable.add(self.model.source)
            self._reachable = reachable
        return self._reachable

    @property
    def reaching_sink(self) -> Set[str]:
        """The sink plus every activity with a path to it."""
        if self._reaching is None:
            reaching = ancestors(self.graph, self.model.sink)
            reaching.add(self.model.sink)
            self._reaching = reaching
        return self._reaching

    @property
    def reduction_edges(self) -> Optional[Set[Edge]]:
        """Edges of the transitive reduction (``None`` for cyclic
        graphs, whose reduction is not unique)."""
        if not self._reduction_computed:
            self._reduction = (
                transitive_reduction_edges(self.graph)
                if self.is_dag
                else None
            )
            self._reduction_computed = True
        return self._reduction

    # ------------------------------------------------------------------
    # Log-derived caches
    # ------------------------------------------------------------------
    @property
    def coverage(self) -> Optional["CoverageReport"]:
        """Per-edge usage of the model by the log (``None`` without a
        log, for an empty log, or for a cyclic graph — required-edge
        analysis needs a topological order)."""
        if not self._coverage_computed:
            self._coverage_computed = True
            if self.log is not None and len(self.log) > 0 and self.is_dag:
                # Imported lazily: repro.analysis pulls in the miners,
                # which would cycle back into repro.model at import
                # time now that validate_process delegates to the lint
                # engine.
                from repro.analysis.coverage import edge_coverage

                self._coverage = edge_coverage(self.graph, self.log)
        return self._coverage

    @property
    def log_activities(self) -> Set[str]:
        """Activities the log mentions (empty set without a log)."""
        if self._log_activities is None:
            self._log_activities = (
                set(self.log.activities()) if self.log is not None else set()
            )
        return self._log_activities

    def observed_outputs(self, activity: str) -> List[Tuple[float, ...]]:
        """Distinct output vectors the log recorded for ``activity``.

        This is the observed output domain the Section 7 learner trains
        on (:mod:`repro.classifier.dataset`); ``PM305`` evaluates
        conditions over it.
        """
        if self._observed is None:
            observed: Dict[str, List[Tuple[float, ...]]] = {}
            seen: Dict[str, Set[Tuple[float, ...]]] = {}
            if self.log is not None:
                for execution in self.log:
                    for instance in execution.instances:
                        if instance.output is None:
                            continue
                        name = instance.activity
                        vector = tuple(float(v) for v in instance.output)
                        if vector not in seen.setdefault(name, set()):
                            seen[name].add(vector)
                            observed.setdefault(name, []).append(vector)
            self._observed = observed
        return self._observed.get(activity, [])


@dataclass(frozen=True)
class LintRule:
    """One registered rule: identity, defaults, and the check function.

    Attributes
    ----------
    code:
        Stable diagnostic code (``PM108``); unique in the registry.
    name:
        Kebab-case slug (``redundant-transitive-edge``).
    severity:
        Default severity (configs may override per code).
    description:
        One-line summary (also shipped in SARIF rule metadata).
    requires_log:
        Whether the rule is skipped when no log is provided.
    dag_severity:
        Severity the rule escalates to under
        :attr:`LintConfig.dag_mode` (``None`` = no escalation).
    check:
        The rule body.
    """

    code: str
    name: str
    severity: Severity
    description: str
    requires_log: bool
    check: RuleCheck
    dag_severity: Optional[Severity] = None

    def default_severity(self, dag_mode: bool) -> Severity:
        """The rule's severity before per-code overrides."""
        if dag_mode and self.dag_severity is not None:
            return self.dag_severity
        return self.severity


_REGISTRY: Dict[str, LintRule] = {}


def rule(
    code: str,
    name: str,
    severity: Severity,
    description: str,
    requires_log: bool = False,
    dag_severity: Optional[Severity] = None,
) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule function under ``code``.

    Codes are permanent API: once shipped, a code keeps its meaning
    forever (a retired rule's code is never reused).
    """

    def decorator(check: RuleCheck) -> RuleCheck:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = LintRule(
            code=code,
            name=name,
            severity=severity,
            description=description,
            requires_log=requires_log,
            check=check,
            dag_severity=dag_severity,
        )
        return check

    return decorator


def all_rules() -> List[LintRule]:
    """Every registered rule, in code order."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> LintRule:
    """Look up one rule by its code (:class:`KeyError` if unknown)."""
    return _REGISTRY[code]
