"""Report emitters: human text, machine JSON, and SARIF 2.1.0.

The SARIF output targets the 2.1.0 schema so CI systems can upload it
directly to code-scanning dashboards: one run, one ``tool.driver`` with
per-rule metadata, and one ``result`` per diagnostic carrying a logical
location (activity/edge) plus, when the model came from a file, a
physical location with the offending line.

:func:`model_line_map` recovers those lines by scanning the model
file's directive lines (``activity X`` / ``edge A B``), mirroring the
parser in :mod:`repro.model.serialize`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.lint.diagnostics import (
    Diagnostic,
    Location,
    activity_location,
    edge_location,
    model_location,
)
from repro.lint.engine import LintReport
from repro.lint.rules import LintRule, all_rules

FORMAT_TEXT = "text"
FORMAT_JSON = "json"
FORMAT_SARIF = "sarif"
FORMATS = (FORMAT_TEXT, FORMAT_JSON, FORMAT_SARIF)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/workflow-mining/repro"


def model_line_map(text: str) -> Dict[Location, int]:
    """Map model locations to 1-based lines of the model file ``text``.

    Activities declared only implicitly (referenced by an edge but
    never by an ``activity`` line) map to their first mentioning edge
    line, so every diagnostic gets *some* anchor.
    """
    lines: Dict[Location, int] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        if not stripped:
            continue
        fields = stripped.split()
        directive = fields[0]
        if directive == "process":
            lines.setdefault(model_location(), line_number)
        elif directive == "activity" and len(fields) >= 2:
            lines.setdefault(activity_location(fields[1]), line_number)
        elif directive == "edge" and len(fields) >= 3:
            lines.setdefault(
                edge_location(fields[1], fields[2]), line_number
            )
            # Implicitly declared endpoints anchor at this edge line.
            lines.setdefault(activity_location(fields[1]), line_number)
            lines.setdefault(activity_location(fields[2]), line_number)
    return lines


# ---------------------------------------------------------------------------
# Text
# ---------------------------------------------------------------------------
def render_text(
    report: LintReport, artifact: Optional[str] = None
) -> str:
    """Human-readable rendering: one line per diagnostic plus a
    summary footer."""
    lines = [
        diagnostic.render(artifact) for diagnostic in report.diagnostics
    ]
    lines.append(report.summary())
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------
def render_json(
    report: LintReport, artifact: Optional[str] = None
) -> str:
    """Machine-readable JSON rendering of the whole report."""
    payload: Dict[str, Any] = {
        "tool": TOOL_NAME,
        "version": __version__,
        "model": report.model_name,
        "max_severity": (
            report.max_severity.value
            if report.max_severity is not None
            else None
        ),
        "exit_code": report.exit_code,
        "checked_rules": list(report.checked_rules),
        "diagnostics": [d.to_dict() for d in report.diagnostics],
    }
    if artifact is not None:
        payload["artifact"] = artifact
    return json.dumps(payload, indent=2, sort_keys=False)


# ---------------------------------------------------------------------------
# SARIF 2.1.0
# ---------------------------------------------------------------------------
def _sarif_rule(lint_rule: LintRule) -> Dict[str, Any]:
    return {
        "id": lint_rule.code,
        "name": lint_rule.name,
        "shortDescription": {"text": lint_rule.description},
        "helpUri": f"{TOOL_URI}/blob/main/docs/LINTING.md#{lint_rule.code}",
        "defaultConfiguration": {
            "level": lint_rule.severity.sarif_level
        },
    }


def _sarif_location(
    diagnostic: Diagnostic, artifact: Optional[str]
) -> Dict[str, Any]:
    logical: Dict[str, Any] = {
        "name": str(diagnostic.location),
        "kind": diagnostic.location.kind,
    }
    location: Dict[str, Any] = {"logicalLocations": [logical]}
    if artifact is not None:
        physical: Dict[str, Any] = {
            "artifactLocation": {"uri": artifact}
        }
        if diagnostic.line is not None:
            physical["region"] = {"startLine": diagnostic.line}
        location["physicalLocation"] = physical
    return location


def render_sarif(
    report: LintReport,
    artifact: Optional[str] = None,
    rules: Optional[List[LintRule]] = None,
) -> str:
    """SARIF 2.1.0 rendering, ready for code-scanning upload.

    ``rules`` overrides the ``tool.driver.rules`` metadata array; by
    default it is the model-lint registry filtered to the report's
    checked rules.  :mod:`repro.devlint` passes its own
    :class:`~repro.lint.rules.LintRule` adapters here so both linters
    share one SARIF surface.
    """
    if rules is None:
        rules = [
            r for r in all_rules() if r.code in set(report.checked_rules)
        ]
    rule_index = {r.code: i for i, r in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for diagnostic in report.diagnostics:
        result: Dict[str, Any] = {
            "ruleId": diagnostic.code,
            "level": diagnostic.severity.sarif_level,
            "message": {"text": diagnostic.message},
            "locations": [_sarif_location(diagnostic, artifact)],
        }
        if diagnostic.code in rule_index:
            result["ruleIndex"] = rule_index[diagnostic.code]
        if diagnostic.fixit is not None:
            # SARIF has no plain-text fix slot outside `fixes` (which
            # needs byte-precise replacements); surface the hint as a
            # result property.
            result["properties"] = {"fixit": diagnostic.fixit}
        results.append(result)
    document: Dict[str, Any] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "version": __version__,
                        "rules": [_sarif_rule(r) for r in rules],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def render(
    report: LintReport,
    output_format: str,
    artifact: Optional[str] = None,
) -> str:
    """Dispatch on ``output_format`` (``text`` / ``json`` / ``sarif``)."""
    if output_format == FORMAT_TEXT:
        return render_text(report, artifact)
    if output_format == FORMAT_JSON:
        return render_json(report, artifact)
    if output_format == FORMAT_SARIF:
        return render_sarif(report, artifact)
    raise ValueError(
        f"unknown lint output format {output_format!r}; "
        f"expected one of {FORMATS}"
    )
