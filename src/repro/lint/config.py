"""Lint engine configuration.

:class:`LintConfig` controls which rules run (``select`` / ``ignore``
code prefixes, mirroring ruff's semantics), their effective severities,
and the knobs individual rules consume (DAG mode, the Section 6 noise
threshold, the satisfiability clause budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional

from repro.lint.diagnostics import Severity


def _normalize_codes(codes: Optional[Iterable[str]]) -> Optional[FrozenSet[str]]:
    if codes is None:
        return None
    cleaned = frozenset(code.strip().upper() for code in codes if code.strip())
    return cleaned or None


@dataclass(frozen=True)
class LintConfig:
    """Which rules run, at which severities, with which thresholds.

    Attributes
    ----------
    select:
        Code prefixes to enable (``{"PM1", "PM203"}``); ``None`` enables
        every registered rule.  A prefix matches every code that starts
        with it, so ``"PM"`` selects all and ``"PM3"`` the log-vs-model
        group.
    ignore:
        Code prefixes to disable; applied after ``select``.
    severity_overrides:
        Per-code severity replacements (exact codes, not prefixes).
    dag_mode:
        When True the model is held to the paper's DAG assumptions:
        cycles and 2-cycles (``PM109``/``PM110``) escalate from warning
        to error.
    noise_threshold:
        Section 6's ``T``: edges required by fewer than ``T`` (but at
        least one) executions trigger ``PM302``.  0 disables the rule.
    max_clauses:
        Budget for the satisfiability checker's DNF expansion; a
        condition that exceeds it is reported by neither ``PM201`` nor
        ``PM202`` (unknown is not a finding).
    """

    select: Optional[FrozenSet[str]] = None
    ignore: Optional[FrozenSet[str]] = None
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)
    dag_mode: bool = False
    noise_threshold: int = 0
    max_clauses: int = 512

    def __post_init__(self) -> None:
        object.__setattr__(self, "select", _normalize_codes(self.select))
        object.__setattr__(self, "ignore", _normalize_codes(self.ignore))
        if self.noise_threshold < 0:
            raise ValueError("noise_threshold must be >= 0")
        if self.max_clauses < 1:
            raise ValueError("max_clauses must be >= 1")

    def is_enabled(self, code: str) -> bool:
        """Whether the rule with ``code`` should run."""
        if self.select is not None and not any(
            code.startswith(prefix) for prefix in self.select
        ):
            return False
        if self.ignore is not None and any(
            code.startswith(prefix) for prefix in self.ignore
        ):
            return False
        return True

    def effective_severity(self, code: str, default: Severity) -> Severity:
        """The severity ``code`` reports at under this configuration."""
        return self.severity_overrides.get(code, default)
