"""Decision procedure for edge-condition satisfiability.

Edge conditions (Section 7) are Boolean combinations of comparisons
between one output parameter and either a constant or another parameter
plus a constant offset (``o[i] <= o[j] + t``).  Over the integer box
domain declared by an activity's :class:`~repro.model.activity.OutputSpec`
(outputs are vectors in ``N^k``), satisfiability of such a condition is
decidable exactly:

1. rewrite to negation normal form and expand to DNF (``!=`` splits into
   ``< or >``), under a clause budget so adversarial inputs cannot blow
   up the lint run;
2. each DNF clause is a conjunction of *difference constraints*
   ``x_a - x_b <= c`` (a comparison against a constant uses a virtual
   zero variable; strict bounds tighten by integrality), plus the domain
   bounds ``low <= x_i <= high``;
3. a difference-constraint system is feasible iff its constraint graph
   has no negative cycle — checked with Bellman–Ford.

The condition is satisfiable iff some clause is feasible; it is a
tautology iff its negation is unsatisfiable.  Both functions return
``None`` (unknown) when the clause budget is exceeded — the lint rules
treat unknown as "no finding".
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.model.activity import OutputSpec
from repro.model.conditions import (
    Always,
    And,
    Comparison,
    Condition,
    Never,
    Not,
    Or,
    ParamRef,
)

#: Default budget for DNF expansion (number of clauses).
DEFAULT_MAX_CLAUSES = 512

Clause = Tuple[Comparison, ...]

_NEGATED_OP: Dict[str, str] = {
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "==": "!=",
    "!=": "==",
}


class ClauseBudgetExceeded(Exception):
    """DNF expansion grew past the configured clause budget."""


def iter_comparisons(condition: Condition) -> Iterator[Comparison]:
    """Yield every :class:`Comparison` leaf of ``condition``."""
    stack: List[Condition] = [condition]
    while stack:
        node = stack.pop()
        if isinstance(node, Comparison):
            yield node
        elif isinstance(node, Not):
            stack.append(node.operand)
        elif isinstance(node, (And, Or)):
            stack.append(node.left)
            stack.append(node.right)


def referenced_indices(condition: Condition) -> FrozenSet[int]:
    """Output-parameter indices ``condition`` reads (both sides)."""
    indices = set()
    for comparison in iter_comparisons(condition):
        indices.add(comparison.index)
        if isinstance(comparison.rhs, ParamRef):
            indices.add(comparison.rhs.index)
    return frozenset(indices)


def condition_clauses(
    condition: Condition, max_clauses: int = DEFAULT_MAX_CLAUSES
) -> Optional[List[Clause]]:
    """DNF clauses of ``condition``; ``None`` if the budget is exceeded.

    Each clause is a conjunction of comparisons with operators in
    ``{<, <=, >, >=, ==}`` (``!=`` is expanded).  The constant
    conditions produce the two degenerate clause lists: ``[()]`` for a
    tautology (one empty clause) and ``[]`` for a contradiction.
    """
    try:
        return _dnf(condition, negate=False, budget=max_clauses)
    except ClauseBudgetExceeded:
        return None


def is_satisfiable(
    condition: Condition,
    spec: OutputSpec,
    max_clauses: int = DEFAULT_MAX_CLAUSES,
) -> Optional[bool]:
    """Whether some output vector in ``spec``'s domain satisfies
    ``condition``; ``None`` when the clause budget is exceeded."""
    clauses = condition_clauses(condition, max_clauses)
    if clauses is None:
        return None
    return any(_clause_feasible(clause, spec) for clause in clauses)


def is_tautology(
    condition: Condition,
    spec: OutputSpec,
    max_clauses: int = DEFAULT_MAX_CLAUSES,
) -> Optional[bool]:
    """Whether ``condition`` holds for *every* vector in the domain."""
    try:
        negated = _dnf(condition, negate=True, budget=max_clauses)
    except ClauseBudgetExceeded:
        return None
    return not any(_clause_feasible(clause, spec) for clause in negated)


# ---------------------------------------------------------------------------
# DNF expansion
# ---------------------------------------------------------------------------
def _dnf(
    condition: Condition, negate: bool, budget: int
) -> List[Clause]:
    if isinstance(condition, Always):
        return [] if negate else [()]
    if isinstance(condition, Never):
        return [()] if negate else []
    if isinstance(condition, Not):
        return _dnf(condition.operand, not negate, budget)
    if isinstance(condition, And):
        if negate:  # De Morgan: ¬(A ∧ B) = ¬A ∨ ¬B
            return _union(
                _dnf(condition.left, True, budget),
                _dnf(condition.right, True, budget),
                budget,
            )
        return _product(
            _dnf(condition.left, False, budget),
            _dnf(condition.right, False, budget),
            budget,
        )
    if isinstance(condition, Or):
        if negate:  # ¬(A ∨ B) = ¬A ∧ ¬B
            return _product(
                _dnf(condition.left, True, budget),
                _dnf(condition.right, True, budget),
                budget,
            )
        return _union(
            _dnf(condition.left, False, budget),
            _dnf(condition.right, False, budget),
            budget,
        )
    if isinstance(condition, Comparison):
        op = _NEGATED_OP[condition.op] if negate else condition.op
        if op == "!=":  # integer split: x != y  ⇔  x < y ∨ x > y
            return [
                (Comparison(condition.index, "<", condition.rhs),),
                (Comparison(condition.index, ">", condition.rhs),),
            ]
        return [(Comparison(condition.index, op, condition.rhs),)]
    raise TypeError(
        f"unsupported condition node {type(condition).__name__}"
    )


def _union(
    left: List[Clause], right: List[Clause], budget: int
) -> List[Clause]:
    if len(left) + len(right) > budget:
        raise ClauseBudgetExceeded
    return left + right


def _product(
    left: List[Clause], right: List[Clause], budget: int
) -> List[Clause]:
    if len(left) * len(right) > budget:
        raise ClauseBudgetExceeded
    return [a + b for a in left for b in right]


# ---------------------------------------------------------------------------
# Clause feasibility: difference constraints + Bellman–Ford
# ---------------------------------------------------------------------------
def _nonstrict_bound(c: float) -> int:
    """Tightest integer bound for ``x - y <= c`` with integer ``x - y``."""
    return math.floor(c)


def _strict_bound(c: float) -> int:
    """Tightest integer bound for ``x - y < c`` with integer ``x - y``."""
    return math.ceil(c) - 1


def _clause_constraints(
    clause: Clause, zero: int
) -> Optional[List[Tuple[int, int, int]]]:
    """Normalize a clause into ``x_a - x_b <= c`` triples ``(a, b, c)``.

    ``zero`` is the index of the virtual zero-valued variable used for
    comparisons against constants.
    """
    constraints: List[Tuple[int, int, int]] = []
    for comparison in clause:
        i = comparison.index
        if isinstance(comparison.rhs, ParamRef):
            j, offset = comparison.rhs.index, comparison.rhs.offset
        else:
            j, offset = zero, float(comparison.rhs)
        op = comparison.op
        if op == "<":
            constraints.append((i, j, _strict_bound(offset)))
        elif op == "<=":
            constraints.append((i, j, _nonstrict_bound(offset)))
        elif op == ">":
            constraints.append((j, i, _strict_bound(-offset)))
        elif op == ">=":
            constraints.append((j, i, _nonstrict_bound(-offset)))
        elif op == "==":
            constraints.append((i, j, _nonstrict_bound(offset)))
            constraints.append((j, i, _nonstrict_bound(-offset)))
        else:  # pragma: no cover - DNF never emits other operators
            return None
    return constraints


def _clause_feasible(clause: Clause, spec: OutputSpec) -> bool:
    """Whether an integer point in the domain satisfies every atom."""
    variables = sorted(
        {c.index for c in clause}
        | {
            c.rhs.index
            for c in clause
            if isinstance(c.rhs, ParamRef)
        }
    )
    if not variables:
        return True  # empty clause: the tautology
    zero = -1  # virtual variable fixed at 0, distinct from any index
    constraints = _clause_constraints(clause, zero)
    if constraints is None:  # pragma: no cover - defensive
        return True
    # Box domain low <= x <= high for every referenced variable.
    for variable in variables:
        constraints.append((variable, zero, spec.high))
        constraints.append((zero, variable, -spec.low))

    # Bellman–Ford from an implicit super-source (all distances 0):
    # the system is feasible iff the constraint graph (edge b -> a with
    # weight c for each a - b <= c) has no negative cycle.
    nodes = [*variables, zero]
    distance: Dict[int, float] = {node: 0.0 for node in nodes}
    for iteration in range(len(nodes)):
        changed = False
        for a, b, c in constraints:
            if distance[b] + c < distance[a]:
                distance[a] = distance[b] + c
                changed = True
        if not changed:
            return True
        if iteration == len(nodes) - 1:
            return False  # still relaxing after |V| passes: negative cycle
    return True
