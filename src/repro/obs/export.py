"""Manifest exporters: JSONL trace events, Prometheus text, human table.

Three renderers over one :class:`~repro.obs.manifest.RunManifest`:

``jsonl``
    One JSON object per line: a ``manifest`` header record, one ``span``
    record per finished span (start order), one ``metric`` record per
    series.  Round-trips through :func:`parse_jsonl`.
``prom``
    Prometheus text exposition format 0.0.4 (``# TYPE`` comments,
    escaped label values, cumulative histogram buckets).  Round-trips
    through the minimal :func:`parse_prometheus` scraper.
``text``
    A human summary: manifest header, indented span tree with wall/CPU
    milliseconds, and a metrics table.

All three render deterministically from the same manifest, so any two
exports of one run agree by construction.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.obs.manifest import RunManifest

PathOrStr = Union[str, Path]

FORMAT_JSONL = "jsonl"
FORMAT_PROM = "prom"
FORMAT_TEXT = "text"

#: Formats accepted by ``--metrics-format`` and :func:`render`.
FORMATS = (FORMAT_JSONL, FORMAT_PROM, FORMAT_TEXT)


# ----------------------------------------------------------------------
# JSONL trace events
# ----------------------------------------------------------------------
def render_jsonl(manifest: RunManifest) -> str:
    """The manifest as newline-delimited JSON trace events."""
    lines = [
        json.dumps(
            {"type": "manifest", **manifest.header_dict()},
            sort_keys=True,
        )
    ]
    lines.extend(
        json.dumps({"type": "span", **span.to_dict()}, sort_keys=True)
        for span in manifest.spans
    )
    # A sample's own "type" is its metric kind; keep it as "kind" so the
    # record "type" discriminator stays "metric".
    lines.extend(
        json.dumps(
            {**sample, "kind": sample["type"], "type": "metric"},
            sort_keys=True,
        )
        for sample in manifest.metrics
    )
    return "\n".join(lines) + "\n"


def parse_jsonl(text: str) -> Dict[str, List[dict]]:
    """Group a JSONL export's records by their ``type`` field."""
    grouped: Dict[str, List[dict]] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.pop("type", None)
        if kind not in ("manifest", "span", "metric"):
            raise ValueError(
                f"line {line_number}: unknown trace-event type {kind!r}"
            )
        grouped.setdefault(kind, []).append(record)
    return grouped


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    cleaned = [
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    ]
    if cleaned and cleaned[0].isdigit():
        cleaned.insert(0, "_")
    return "".join(cleaned) or "_"


def _prom_escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(
    labels: dict, extra: Tuple[Tuple[str, str], ...] = ()
) -> str:
    pairs = [*sorted(labels.items()), *extra]
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_prom_escape(str(value))}"' for key, value in pairs
    )
    return "{" + body + "}"


def _prom_number(value: object) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def render_prometheus(manifest: RunManifest) -> str:
    """The metric snapshot in Prometheus text exposition format.

    Spans are exposed too, as the ``repro_span_seconds`` /
    ``repro_span_cpu_seconds`` gauge families labelled by stage, so a
    scrape carries the full stage breakdown.
    """
    lines: List[str] = []
    typed: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for sample in manifest.metrics:
        name = _prom_name(sample["name"])
        labels = sample.get("labels", {})
        kind = sample["type"]
        type_line(name, kind)
        if kind == "histogram":
            running = 0
            for le, count in sample["buckets"]:
                running += count
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(labels, (('le', _prom_number(float(le))),))}"
                    f" {running}"
                )
            lines.append(
                f"{name}_bucket"
                f"{_prom_labels(labels, (('le', '+Inf'),))}"
                f" {sample['count']}"
            )
            lines.append(
                f"{name}_sum{_prom_labels(labels)} "
                f"{_prom_number(sample['sum'])}"
            )
            lines.append(
                f"{name}_count{_prom_labels(labels)} {sample['count']}"
            )
        else:
            lines.append(
                f"{name}{_prom_labels(labels)} "
                f"{_prom_number(sample['value'])}"
            )

    for family, attribute in (
        ("repro_span_seconds", "wall_seconds"),
        ("repro_span_cpu_seconds", "cpu_seconds"),
    ):
        if manifest.spans:
            type_line(family, "gauge")
        for span in manifest.spans:
            value = getattr(span, attribute)
            labels = _prom_labels(
                {"stage": span.name, "index": str(span.index)}
            )
            lines.append(f"{family}{labels} {_prom_number(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Minimal scraper for the text exposition format.

    Returns ``{(name, sorted label pairs): value}``.  Raises
    :class:`ValueError` on lines that are neither comments nor valid
    samples — the acceptance check "output parses as Prometheus text
    exposition" is exactly this function succeeding.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name, labels, rest = _parse_prom_sample(line, line_number)
        value_text = rest.strip().split()[0]
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {line_number}: bad sample value {value_text!r}"
            ) from None
        samples[(name, labels)] = value
    return samples


def _parse_prom_sample(
    line: str, line_number: int
) -> Tuple[str, Tuple[Tuple[str, str], ...], str]:
    brace = line.find("{")
    if brace == -1:
        name, _, rest = line.partition(" ")
        if not rest:
            raise ValueError(
                f"line {line_number}: sample without value: {line!r}"
            )
        _check_prom_name(name, line_number)
        return name, (), rest
    name = line[:brace]
    _check_prom_name(name, line_number)
    end = line.find("}", brace)
    if end == -1:
        raise ValueError(f"line {line_number}: unterminated label set")
    pairs: List[Tuple[str, str]] = []
    body = line[brace + 1:end]
    position = 0
    while position < len(body):
        eq = body.find("=", position)
        if eq == -1:
            raise ValueError(
                f"line {line_number}: malformed label in {body!r}"
            )
        key = body[position:eq].strip().lstrip(",").strip()
        if body[eq + 1] != '"':
            raise ValueError(
                f"line {line_number}: unquoted label value for {key!r}"
            )
        cursor = eq + 2
        value_chars: List[str] = []
        while cursor < len(body):
            ch = body[cursor]
            if ch == "\\" and cursor + 1 < len(body):
                escape = body[cursor + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(
                        escape, "\\" + escape
                    )
                )
                cursor += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            cursor += 1
        else:
            raise ValueError(
                f"line {line_number}: unterminated label value"
            )
        pairs.append((key, "".join(value_chars)))
        position = cursor + 1
    return name, tuple(sorted(pairs)), line[end + 1:]


def _check_prom_name(name: str, line_number: int) -> None:
    valid = name and (name[0].isalpha() or name[0] in "_:") and all(
        ch.isalnum() or ch in "_:" for ch in name
    )
    if not valid:
        raise ValueError(
            f"line {line_number}: invalid metric name {name!r}"
        )


# ----------------------------------------------------------------------
# Human summary table
# ----------------------------------------------------------------------
def render_text(manifest: RunManifest) -> str:
    """A human-readable run summary (header, span tree, metric table)."""
    lines: List[str] = [f"run: {manifest.command}"]
    if manifest.input_path:
        lines.append(f"  input: {manifest.input_path}")
    if manifest.input_digest:
        lines.append(f"  digest: {manifest.input_digest}")
    if manifest.git_sha:
        lines.append(f"  git: {manifest.git_sha}")
    environment = manifest.environment
    lines.append(
        f"  python: {environment.get('python', '?')} "
        f"({environment.get('platform', '?')})"
    )
    for key, value in sorted(manifest.config.items()):
        lines.append(f"  config.{key}: {value}")

    if manifest.spans:
        lines.append("")
        lines.append(f"{'stage':<44} {'wall ms':>10} {'cpu ms':>10}")
        for span in manifest.spans:
            label = "  " * span.depth + span.name
            lines.append(
                f"{label:<44} {span.wall_seconds * 1000:>10.2f} "
                f"{span.cpu_seconds * 1000:>10.2f}"
            )

    if manifest.metrics:
        lines.append("")
        lines.append(f"{'metric':<58} {'value':>14}")
        for sample in manifest.metrics:
            label = sample["name"] + _prom_labels(
                sample.get("labels", {})
            )
            if sample["type"] == "histogram":
                mean = (
                    sample["sum"] / sample["count"]
                    if sample["count"]
                    else 0.0
                )
                value = (
                    f"n={sample['count']} mean={mean:.6g}"
                )
            else:
                value = _prom_number(sample["value"])
            lines.append(f"{label:<58} {value:>14}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
_RENDERERS = {
    FORMAT_JSONL: render_jsonl,
    FORMAT_PROM: render_prometheus,
    FORMAT_TEXT: render_text,
}


def render(manifest: RunManifest, fmt: str) -> str:
    """Render ``manifest`` in ``fmt`` (one of :data:`FORMATS`)."""
    try:
        renderer = _RENDERERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown metrics format {fmt!r}; expected one of {FORMATS}"
        ) from None
    return renderer(manifest)


def write_manifest(
    manifest: RunManifest, path: PathOrStr, fmt: str = FORMAT_JSONL
) -> Path:
    """Render and write ``manifest`` to ``path``; returns the path.

    Written via :func:`repro.resilience.durable.durable_write` so a
    crash mid-export never clobbers a previous manifest with a
    partial one.
    """
    from repro.resilience.durable import durable_write

    path = Path(path)
    durable_write(path, render(manifest, fmt).encode("utf-8"))
    return path
