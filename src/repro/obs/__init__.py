"""``repro.obs`` — dependency-free observability for the mining pipeline.

Layers
------
:mod:`repro.obs.metrics`
    Typed counters/gauges/histograms in a per-run
    :class:`~repro.obs.metrics.MetricsRegistry` with deterministic
    parallel-job merging.
:mod:`repro.obs.recorder`
    Hierarchical spans (wall + CPU time) via
    :class:`~repro.obs.recorder.ObsRecorder`, and the disabled-by-default
    :class:`~repro.obs.recorder.NullRecorder` fast path
    (:data:`~repro.obs.recorder.NULL_RECORDER`).
:mod:`repro.obs.manifest`
    The :class:`~repro.obs.manifest.RunManifest` tying input digest,
    config, environment and git SHA to the observed spans and metrics.
:mod:`repro.obs.export`
    JSONL trace events, Prometheus text exposition, and a human summary
    table, all rendered from one manifest.

The stable metric and span catalogue lives in ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    FORMAT_JSONL,
    FORMAT_PROM,
    FORMAT_TEXT,
    FORMATS,
    parse_jsonl,
    parse_prometheus,
    render,
    render_jsonl,
    render_prometheus,
    render_text,
    write_manifest,
)
from repro.obs.manifest import (
    RunManifest,
    environment_info,
    git_sha,
    input_digest,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    ObsRecorder,
    Recorder,
    Span,
    resolve_recorder,
)

__all__ = [
    "FORMAT_JSONL",
    "FORMAT_PROM",
    "FORMAT_TEXT",
    "FORMATS",
    "parse_jsonl",
    "parse_prometheus",
    "render",
    "render_jsonl",
    "render_prometheus",
    "render_text",
    "write_manifest",
    "RunManifest",
    "environment_info",
    "git_sha",
    "input_digest",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "ObsRecorder",
    "Recorder",
    "Span",
    "resolve_recorder",
]
