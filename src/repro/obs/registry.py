"""The declared metric catalogue: every stable ``repro_*`` name.

:mod:`repro.obs.metrics` is a *runtime* registry — it materializes
whatever series the instrumented code happens to emit during one run.
This module is the *static* registry: the authoritative, checked-in
declaration of every metric name the pipeline is allowed to emit, with
its kind, label keys and one-line meaning.

Two consumers keep it honest in both directions:

* ``repro.devlint`` rule **RL301** flags any ``recorder.count`` /
  ``gauge`` / ``observe`` call whose literal name is missing here
  (emitted but undeclared), and **RL302** flags any declaration that no
  source module references (declared but emitted nowhere).
* The "Stable metric names" tables in ``docs/OBSERVABILITY.md`` are
  generated from this catalogue via :func:`render_metrics_markdown`,
  and a test asserts the document carries the generated block verbatim
  — the doc is checked against the code, never trusted.

Renaming or dropping an entry is a compatibility break for downstream
dashboards; treat it like removing a CLI flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: name, kind, label keys, meaning."""

    name: str
    kind: str
    labels: Tuple[str, ...]
    help: str


def _counter(name: str, help: str, *labels: str) -> MetricSpec:
    return MetricSpec(name=name, kind=KIND_COUNTER, labels=labels, help=help)


def _gauge(name: str, help: str, *labels: str) -> MetricSpec:
    return MetricSpec(name=name, kind=KIND_GAUGE, labels=labels, help=help)


def _histogram(name: str, help: str, *labels: str) -> MetricSpec:
    return MetricSpec(
        name=name, kind=KIND_HISTOGRAM, labels=labels, help=help
    )


#: Every stable metric name, in emission-site order within each family.
DECLARED_METRICS: Tuple[MetricSpec, ...] = (
    # Mining core (Algorithm 2/3 stages).
    _counter(
        "repro_mine_executions_total",
        "Executions consumed by the mining pipeline",
    ),
    _counter(
        "repro_mine_variants_total",
        "Distinct trace variants after deduplication",
    ),
    _counter(
        "repro_mine_pairs_extracted_total",
        "Follows-pairs extracted in step 2",
    ),
    _counter(
        "repro_mine_step5_cache_hits_total",
        "Step-5 transitive-reduction memo hits",
    ),
    _counter(
        "repro_mine_step5_cache_misses_total",
        "Step-5 transitive-reduction memo misses",
    ),
    _counter(
        "repro_mine_step5_cache_prefix_extends_total",
        "Step-5 reductions resumed from a cached variant prefix",
    ),
    _counter(
        "repro_mine_scc_edges_removed_total",
        "Edges removed by strongly-connected-component collapse",
    ),
    _counter(
        "repro_mine_edges_dropped_total",
        "Edges dropped by the noise threshold or overlap filter",
        "cause",
    ),
    # Mining kernels (pluggable hot-path backends).
    _counter(
        "repro_kernel_runs_total",
        "Mining runs per selected kernel",
        "kernel",
    ),
    _counter(
        "repro_kernel_reductions_total",
        "Step-5 reductions computed, by implementation path",
        "path",
    ),
    _counter(
        "repro_kernel_prefix_cache_events_total",
        "Step-5 reduction cache traffic, by event kind",
        "event",
    ),
    # Ingest / quarantine.
    _counter(
        "repro_ingest_executions_accepted_total",
        "Executions accepted by the ingest policy",
    ),
    _counter(
        "repro_ingest_records_accepted_total",
        "Event records accepted by the ingest policy",
    ),
    _counter(
        "repro_ingest_executions_repaired_total",
        "Executions that needed at least one repair rule",
    ),
    _counter(
        "repro_ingest_repairs_total",
        "Individual repairs applied, by rule",
        "rule",
    ),
    _counter(
        "repro_ingest_quarantined_total",
        "Lines/executions diverted to the dead-letter sink",
        "kind",
    ),
    _counter(
        "repro_ingest_quarantine_reasons_total",
        "Quarantined items by reason (incl. late-record)",
        "reason",
    ),
    _counter(
        "repro_ingest_variant_memo_total",
        "Prepared-variant memo traffic in MiningState.update",
        "event",
    ),
    # Streaming fold.
    _counter(
        "repro_stream_executions_total",
        "Executions folded into a MiningState by fold_executions",
    ),
    # Section 7 conditions mining.
    _counter(
        "repro_conditions_edges_total",
        "Edges examined by the conditions learner",
    ),
    _counter(
        "repro_conditions_learnable_total",
        "Edges with a learnable boolean condition",
    ),
    _counter(
        "repro_conditions_splits_total",
        "Decision-tree splits evaluated while learning conditions",
    ),
    # Model lint.
    _counter(
        "repro_lint_rules_checked_total",
        "Lint rules that ran during one lint_model call",
    ),
    _counter(
        "repro_lint_findings_total",
        "Lint diagnostics produced, by severity",
        "severity",
    ),
    # Process-pool parallelism.
    _counter(
        "repro_parallel_chunks_total",
        "Chunks dispatched to worker processes",
        "stage",
    ),
    _counter(
        "repro_parallel_pool_fallback_total",
        "Degrade-to-serial events when no process pool could start",
        "stage",
    ),
    _counter(
        "repro_parallel_ipc_bytes_total",
        "Bytes shipped over IPC (result vs per_item_equivalent)",
        "stage",
        "payload",
    ),
    _counter(
        "repro_fold_retries_total",
        "Chunks resubmitted by the supervised fold",
        "stage",
    ),
    _counter(
        "repro_fold_timeouts_total",
        "Hung-worker detections by the supervised fold",
        "stage",
    ),
    _counter(
        "repro_fold_poisoned_chunks_total",
        "Chunks that exhausted their retry budget and were quarantined",
        "stage",
    ),
    # Service daemon (repro-miner serve).
    _counter(
        "repro_service_requests_total",
        "HTTP requests served, by endpoint and status code",
        "endpoint",
        "status",
    ),
    _counter(
        "repro_service_events_total",
        "Event lines accepted into tenant ingest queues",
    ),
    _counter(
        "repro_service_backpressure_total",
        "Ingest batches rejected with 429 (tenant queue full)",
    ),
    _counter(
        "repro_service_ingest_errors_total",
        "Queued batches that failed to fold, by error kind",
        "kind",
    ),
    _counter(
        "repro_service_snapshots_total",
        "Model snapshot refreshes across all tenants",
    ),
    # Durability: journal + checkpoints.
    _counter(
        "repro_journal_records_total",
        "Executions appended to the write-ahead journal",
    ),
    _counter(
        "repro_journal_replayed_total",
        "Journal records replayed into the state during recovery",
    ),
    _counter(
        "repro_journal_torn_tail_total",
        "Recoveries that discarded a torn final journal record",
    ),
    _counter(
        "repro_checkpoint_fallback_total",
        "Checkpoint loads that fell back to the .prev sibling",
    ),
    _counter(
        "repro_session_checkpoints_total",
        "Hardened checkpoints written by durable sessions",
    ),
    # Gauges.
    _gauge(
        "repro_mine_edges",
        "Edge count after each mining stage",
        "stage",
    ),
    _gauge("repro_mine_jobs", "Resolved worker-process count"),
    _gauge("repro_checkpoint_bytes", "Size of the last checkpoint"),
    _gauge(
        "repro_checkpoint_variants",
        "Variants covered by the last checkpoint",
    ),
    _gauge(
        "repro_checkpoint_executions",
        "Executions covered by the last checkpoint",
    ),
    _gauge(
        "repro_checkpoint_age_seconds",
        "Age of the loaded checkpoint at resume time",
    ),
    _gauge(
        "repro_service_tenants",
        "Live tenants held by the service registry",
    ),
    _gauge(
        "repro_service_queue_depth",
        "Queued ingest batches per tenant",
        "process",
    ),
    _gauge(
        "repro_span_seconds",
        "Per-span wall seconds (prom exporter view of spans)",
        "stage",
        "index",
    ),
    _gauge(
        "repro_span_cpu_seconds",
        "Per-span CPU seconds (prom exporter view of spans)",
        "stage",
        "index",
    ),
    # Histograms.
    _histogram(
        "repro_parallel_chunk_seconds",
        "Per-worker-chunk wall time",
        "stage",
    ),
    _histogram(
        "repro_conditions_tree_depth",
        "Decision-tree depth per learned edge",
    ),
    _histogram(
        "repro_ingest_batch_records",
        "Records decoded per push_batch block",
        "source",
    ),
)

_BY_NAME: Dict[str, MetricSpec] = {
    spec.name: spec for spec in DECLARED_METRICS
}
if len(_BY_NAME) != len(DECLARED_METRICS):
    raise ValueError("duplicate metric name in DECLARED_METRICS")


def declared_metric_names() -> FrozenSet[str]:
    """The set of every declared metric name."""
    return frozenset(_BY_NAME)


def get_metric(name: str) -> MetricSpec:
    """Look up one declaration (:class:`KeyError` if unknown)."""
    return _BY_NAME[name]


_KIND_TITLES = (
    (KIND_COUNTER, "Counters (monotonic totals)"),
    (KIND_GAUGE, "Gauges (point-in-time values)"),
    (KIND_HISTOGRAM, "Histograms"),
)


def render_metrics_markdown() -> str:
    """The generated markdown tables for ``docs/OBSERVABILITY.md``.

    One table per metric kind, in declaration order.  The document
    embeds this text between ``BEGIN GENERATED: metrics-registry``
    markers; a test regenerates it and fails on any drift.
    """
    blocks: List[str] = []
    for kind, title in _KIND_TITLES:
        rows = [spec for spec in DECLARED_METRICS if spec.kind == kind]
        if not rows:
            continue
        lines = [
            f"### {title}",
            "",
            "| name | labels | meaning |",
            "|---|---|---|",
        ]
        for spec in rows:
            labels = (
                ", ".join(f"`{label}`" for label in spec.labels)
                if spec.labels
                else "—"
            )
            lines.append(f"| `{spec.name}` | {labels} | {spec.help} |")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"
