"""The :class:`RunManifest`: everything needed to compare two runs.

A manifest pins down *what* ran (command and config), *on what* (input
path and content digest), *where* (Python/platform, best-effort git
SHA), and *what happened* (the recorder's spans and metric snapshot).
Two manifests with equal digests, configs and environments are
comparable run-to-run — the property the CI regression gate and
``benchmarks/perf_harness.py`` build on.

Everything here is dependency-free: the git SHA is resolved by reading
``.git/HEAD`` (and ``packed-refs``) directly, never by shelling out.
"""

from __future__ import annotations

import hashlib
import os
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Mapping, Optional, Union

from repro.obs.recorder import ObsRecorder, Span

PathOrStr = Union[str, Path]

#: Manifest schema version (bump on breaking field changes).
MANIFEST_VERSION = 1


def input_digest(path: PathOrStr) -> str:
    """``sha256:`` digest of a file's bytes (streamed, constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 16), b""):
            digest.update(block)
    return f"sha256:{digest.hexdigest()}"


def git_sha(start: Optional[PathOrStr] = None) -> Optional[str]:
    """Best-effort commit SHA of the repository containing ``start``.

    Walks up from ``start`` (default: the working directory) to the
    first ``.git`` directory, then resolves ``HEAD`` through loose refs
    and ``packed-refs``.  Returns ``None`` outside a repository or on
    any read problem — a manifest must never fail because git state is
    odd.
    """
    try:
        here = Path(start if start is not None else os.getcwd()).resolve()
        for candidate in (here, *here.parents):
            git_dir = candidate / ".git"
            if not git_dir.is_dir():
                continue
            head = (git_dir / "HEAD").read_text(encoding="utf-8").strip()
            if not head.startswith("ref:"):
                return head or None
            ref = head.partition(":")[2].strip()
            loose = git_dir / ref
            if loose.is_file():
                return loose.read_text(encoding="utf-8").strip() or None
            packed = git_dir / "packed-refs"
            if packed.is_file():
                for line in packed.read_text(
                    encoding="utf-8"
                ).splitlines():
                    if line.startswith("#") or line.startswith("^"):
                        continue
                    sha, _, name = line.partition(" ")
                    if name.strip() == ref:
                        return sha.strip() or None
            return None
    except OSError:
        return None
    return None


def environment_info() -> dict:
    """The environment fields every manifest carries."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else "",
        "repro_jobs": os.environ.get("REPRO_JOBS", ""),
    }


@dataclass
class RunManifest:
    """One run's identity plus its observed spans and metrics."""

    command: str
    config: Mapping[str, object] = field(default_factory=dict)
    input_path: Optional[str] = None
    input_digest: Optional[str] = None
    git_sha: Optional[str] = None
    environment: Mapping[str, object] = field(
        default_factory=environment_info
    )
    spans: List[Span] = field(default_factory=list)
    metrics: List[dict] = field(default_factory=list)
    version: int = MANIFEST_VERSION

    @classmethod
    def collect(
        cls,
        recorder: ObsRecorder,
        command: str,
        input_path: Optional[PathOrStr] = None,
        config: Optional[Mapping[str, object]] = None,
    ) -> "RunManifest":
        """Snapshot ``recorder`` into a manifest for ``command``.

        The input digest is computed when ``input_path`` names a
        readable file; a vanished input degrades to ``None`` rather
        than failing the run that already finished.
        """
        digest: Optional[str] = None
        if input_path is not None:
            try:
                digest = input_digest(input_path)
            except OSError:
                digest = None
        return cls(
            command=command,
            config=dict(config or {}),
            input_path=str(input_path) if input_path is not None else None,
            input_digest=digest,
            git_sha=git_sha(),
            spans=list(recorder.spans),
            metrics=recorder.registry.snapshot(),
        )

    def stage_names(self) -> List[str]:
        """Span names in start order (the pipeline's stage skeleton)."""
        return [span.name for span in self.spans]

    def header_dict(self) -> dict:
        """The identity fields (everything except spans and metrics)."""
        return {
            "version": self.version,
            "command": self.command,
            "config": dict(self.config),
            "input_path": self.input_path,
            "input_digest": self.input_digest,
            "git_sha": self.git_sha,
            "environment": dict(self.environment),
        }

    def to_dict(self) -> dict:
        """The complete JSON-ready manifest."""
        payload = self.header_dict()
        payload["spans"] = [span.to_dict() for span in self.spans]
        payload["metrics"] = list(self.metrics)
        return payload
