"""Recorders: hierarchical spans plus a metrics registry, or a no-op.

Two implementations share one duck-typed interface:

* :class:`ObsRecorder` — the real thing.  ``span(name)`` opens a
  hierarchical span (wall time via ``perf_counter``, CPU time via
  ``process_time``); finished spans accumulate in *start* order, each
  knowing its parent and depth.  ``registry`` is the run's
  :class:`~repro.obs.metrics.MetricsRegistry`.
* :class:`NullRecorder` — the disabled-by-default fast path.  Every
  method is a constant-return no-op: ``span()`` hands back one shared
  context-manager singleton and counters/gauges/histograms route to one
  shared sink that ignores writes, so instrumented code allocates
  nothing when observability is off.

Instrumented code takes a recorder argument defaulting to
:data:`NULL_RECORDER` and never needs an ``if enabled`` guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter, process_time
from typing import List, Mapping, Optional, Sequence, Union

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry

Number = Union[int, float]


@dataclass(frozen=True)
class Span:
    """One finished span.

    ``index`` is the span's position in start order; ``parent`` is the
    enclosing span's index (``None`` at the root); ``start`` is seconds
    since the recorder was created.
    """

    name: str
    index: int
    parent: Optional[int]
    depth: int
    start: float
    wall_seconds: float
    cpu_seconds: float
    attrs: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready representation (the JSONL trace-event payload)."""
        return {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "start_s": round(self.start, 9),
            "wall_s": round(self.wall_seconds, 9),
            "cpu_s": round(self.cpu_seconds, 9),
            "attrs": dict(self.attrs),
        }


class _ActiveSpan:
    """Context manager for one in-flight :class:`ObsRecorder` span."""

    __slots__ = (
        "_recorder", "_name", "_attrs", "_index", "_parent",
        "_depth", "_start", "_wall0", "_cpu0",
    )

    def __init__(
        self, recorder: "ObsRecorder", name: str, attrs: dict
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        recorder = self._recorder
        self._index = len(recorder._slots)
        recorder._slots.append(None)
        self._parent = (
            recorder._stack[-1] if recorder._stack else None
        )
        self._depth = len(recorder._stack)
        recorder._stack.append(self._index)
        self._wall0 = perf_counter()
        self._cpu0 = process_time()
        self._start = self._wall0 - recorder._epoch
        return self

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the span while it is open."""
        self._attrs.update(attrs)

    def __exit__(self, *exc_info: object) -> None:
        wall = perf_counter() - self._wall0
        cpu = process_time() - self._cpu0
        recorder = self._recorder
        recorder._stack.pop()
        recorder._slots[self._index] = Span(
            name=self._name,
            index=self._index,
            parent=self._parent,
            depth=self._depth,
            start=self._start,
            wall_seconds=wall,
            cpu_seconds=cpu,
            attrs=self._attrs,
        )


class ObsRecorder:
    """Collect spans and metrics for one run."""

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else (
            MetricsRegistry()
        )
        self._epoch = perf_counter()
        self._slots: List[Optional[Span]] = []
        self._stack: List[int] = []

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        return _ActiveSpan(self, name, dict(attrs))

    @property
    def spans(self) -> List[Span]:
        """Finished spans in start order (open spans excluded)."""
        return [span for span in self._slots if span is not None]

    def span_names(self) -> List[str]:
        """Names of the finished spans, in start order."""
        return [span.name for span in self.spans]

    # ------------------------------------------------------------------
    # Metric shorthands
    # ------------------------------------------------------------------
    def count(
        self,
        name: str,
        amount: Number = 1,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Add ``amount`` to counter ``name``."""
        self.registry.counter(name, labels).inc(amount)

    def gauge(
        self,
        name: str,
        value: Number,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Set gauge ``name`` to ``value``."""
        self.registry.gauge(name, labels).set(value)

    def observe(
        self,
        name: str,
        value: Number,
        labels: Optional[Mapping[str, str]] = None,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record one observation into histogram ``name``."""
        self.registry.histogram(name, labels, bounds=bounds).observe(value)

    def merge_registry(self, other: MetricsRegistry) -> None:
        """Fold a worker's registry into this run's registry."""
        self.registry.merge(other)


class _NullSpan:
    """The shared no-op span context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def annotate(self, **attrs: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled fast path: every operation is a cheap no-op.

    ``span()`` always returns the same module-level singleton and the
    metric shorthands return immediately, so instrumentation sites cost
    one attribute lookup and one call — and allocate nothing.
    """

    enabled = False
    registry = None

    __slots__ = ()

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    @property
    def spans(self) -> List[Span]:
        return []

    def span_names(self) -> List[str]:
        return []

    def count(
        self,
        name: str,
        amount: Number = 1,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        return None

    def gauge(
        self,
        name: str,
        value: Number,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        return None

    def observe(
        self,
        name: str,
        value: Number,
        labels: Optional[Mapping[str, str]] = None,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        return None

    def merge_registry(self, other: object) -> None:
        return None


#: The shared disabled recorder; instrumented code defaults to this.
NULL_RECORDER = NullRecorder()

Recorder = Union[ObsRecorder, NullRecorder]


def resolve_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Map ``None`` (observability off) to :data:`NULL_RECORDER`."""
    return recorder if recorder is not None else NULL_RECORDER
