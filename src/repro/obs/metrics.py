"""Typed per-run metrics: counters, gauges, histograms, registry.

The registry is the single mutable store one run writes into.  It is
dependency-free and deliberately small — three metric types with the
semantics their Prometheus namesakes have:

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge` — a value that can go up and down (last write wins);
* :class:`Histogram` — bucketed observations with ``sum`` and ``count``.

Metrics are keyed by ``(name, labels)`` where labels are an immutable
sorted tuple of ``(key, value)`` string pairs, so the same logical series
is always the same object regardless of keyword order at the call site.

``merge`` folds another registry in — the parallel workers each fill a
private registry and the coordinator merges them in submission order.
Counter and histogram merging is commutative (addition), so the merged
totals are identical for any merge order; gauges take the incoming value
(last merge wins), which is deterministic because merge order is
submission order.

Stable metric names are catalogued in ``docs/OBSERVABILITY.md``; code
should treat a rename as a breaking change.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    TypeVar,
    Union,
)

Number = Union[int, float]

_SeriesT = TypeVar("_SeriesT", bound="Metric")
LabelPairs = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-flavoured, matching
#: the pipeline's per-chunk timing range).  ``inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(
        sorted((str(k), str(v)) for k, v in labels.items())
    )


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value; ``set`` overwrites."""

    kind = "gauge"

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Record the current value of the measured quantity."""
        self.value = value


class Histogram:
    """Bucketed observations with cumulative Prometheus semantics.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` exactly as
    observed (non-cumulative internally); the exporter accumulates to
    Prometheus' cumulative ``le`` convention.  The overflow bucket
    (``+Inf``) is ``count - sum(bucket_counts)``.
    """

    kind = "histogram"

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if tuple(bounds) != tuple(sorted(bounds)):
            raise ValueError("histogram bounds must be sorted ascending")
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.sum: float = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(
            self.bounds, self.bucket_counts, strict=True
        ):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """The per-run store of every metric series.

    Series are created on first use and iterated in sorted
    ``(name, labels)`` order, so every export of the same run state is
    byte-identical.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelPairs], Metric] = {}

    # ------------------------------------------------------------------
    # Series accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """The counter series ``name`` with ``labels``."""
        return self._series(Counter, name, labels)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """The gauge series ``name`` with ``labels``."""
        return self._series(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """The histogram series ``name`` with ``labels``."""
        key = (name, _freeze_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], bounds=bounds)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def _series(
        self,
        cls: Type[_SeriesT],
        name: str,
        labels: Optional[Mapping[str, str]],
    ) -> _SeriesT:
        key = (name, _freeze_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[Metric]:
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[Metric]:
        """The existing series, or ``None`` (never creates)."""
        return self._metrics.get((name, _freeze_labels(labels)))

    def snapshot(self) -> List[dict]:
        """JSON-ready samples in sorted series order."""
        samples: List[dict] = []
        for metric in self:
            sample = {
                "name": metric.name,
                "type": metric.kind,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                sample["sum"] = metric.sum
                sample["count"] = metric.count
                sample["buckets"] = [
                    [le, n] for le, n in zip(
                        metric.bounds,
                        metric.bucket_counts,
                        strict=True,
                    )
                ]
            else:
                sample["value"] = metric.value
            samples.append(sample)
        return samples

    # ------------------------------------------------------------------
    # Merge (parallel-job fan-in)
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters and histograms add (order-independent); gauges take the
        incoming value (last merge wins).  Histogram merging requires
        identical bucket bounds.
        """
        for key, incoming in sorted(other._metrics.items()):
            mine = self._metrics.get(key)
            if mine is None:
                self._metrics[key] = _clone(incoming)
                continue
            if mine.kind != incoming.kind:
                raise TypeError(
                    f"cannot merge {incoming.kind} into {mine.kind} "
                    f"series {key[0]!r}"
                )
            if isinstance(mine, Counter):
                mine.value += incoming.value
            elif isinstance(mine, Gauge):
                mine.value = incoming.value
            else:
                assert isinstance(incoming, Histogram)
                if mine.bounds != incoming.bounds:
                    raise ValueError(
                        f"histogram {key[0]!r} bucket bounds differ"
                    )
                for i, n in enumerate(incoming.bucket_counts):
                    mine.bucket_counts[i] += n
                mine.sum += incoming.sum
                mine.count += incoming.count


def _clone(metric: Metric) -> Metric:
    if isinstance(metric, Counter):
        copy: Metric = Counter(metric.name, metric.labels)
        copy.value = metric.value
    elif isinstance(metric, Gauge):
        copy = Gauge(metric.name, metric.labels)
        copy.value = metric.value
    else:
        copy = Histogram(metric.name, metric.labels, bounds=metric.bounds)
        copy.bucket_counts = list(metric.bucket_counts)
        copy.sum = metric.sum
        copy.count = metric.count
    return copy
