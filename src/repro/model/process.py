"""The business process model (Definition 1).

A :class:`ProcessModel` bundles the activity set, the control-flow graph,
and the per-edge Boolean conditions.  Activity output functions live on the
:class:`~repro.model.activity.Activity` objects (as output specs/samplers);
the model maps activity names to those objects.

The class is immutable after construction; use
:class:`~repro.model.builder.ProcessBuilder` for incremental definition.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import EdgeNotFoundError, InvalidProcessError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import is_acyclic
from repro.model.activity import Activity
from repro.model.conditions import Always, Condition

Edge = Tuple[str, str]


class ProcessModel:
    """A business process: activities, control-flow graph, edge conditions.

    Parameters
    ----------
    name:
        Process name (appears in every log record).
    activities:
        The process' activities; names must be unique.
    edges:
        Control-flow edges as ``(source, target)`` activity-name pairs.
    conditions:
        Optional mapping from edge to :class:`Condition`; edges without an
        entry default to :class:`Always` (unconditional flow).
    source, sink:
        Names of the initiating and terminating activities.  When omitted
        they are inferred as the unique in-degree-0 / out-degree-0 vertex;
        construction fails if that vertex is not unique, matching the
        paper's single-source/single-sink assumption.

    Examples
    --------
    >>> from repro.model.activity import Activity
    >>> model = ProcessModel(
    ...     "demo",
    ...     activities=[Activity(n) for n in "ABE"],
    ...     edges=[("A", "B"), ("B", "E")],
    ... )
    >>> model.source, model.sink
    ('A', 'E')
    """

    def __init__(
        self,
        name: str,
        activities: Iterable[Activity],
        edges: Iterable[Edge],
        conditions: Optional[Mapping[Edge, Condition]] = None,
        source: Optional[str] = None,
        sink: Optional[str] = None,
    ) -> None:
        if not name:
            raise InvalidProcessError(["process name must be non-empty"])
        self._name = name
        self._activities: Dict[str, Activity] = {}
        for activity in activities:
            if activity.name in self._activities:
                raise InvalidProcessError(
                    [f"duplicate activity name {activity.name!r}"]
                )
            self._activities[activity.name] = activity

        self._graph = DiGraph(nodes=self._activities)
        violations = []
        for edge_source, edge_target in edges:
            for endpoint in (edge_source, edge_target):
                if endpoint not in self._activities:
                    violations.append(
                        f"edge ({edge_source!r}, {edge_target!r}) references "
                        f"unknown activity {endpoint!r}"
                    )
            if edge_source == edge_target:
                violations.append(
                    f"self-loop on activity {edge_source!r} is not allowed"
                )
        if violations:
            raise InvalidProcessError(violations)
        for edge_source, edge_target in edges:
            self._graph.add_edge(edge_source, edge_target)

        self._conditions: Dict[Edge, Condition] = {}
        conditions = conditions or {}
        for edge, condition in conditions.items():
            if not self._graph.has_edge(*edge):
                raise InvalidProcessError(
                    [f"condition given for non-edge {edge!r}"]
                )
            self._conditions[edge] = condition

        self._source = self._resolve_endpoint(source, self._graph.sources(),
                                              "source")
        self._sink = self._resolve_endpoint(sink, self._graph.sinks(), "sink")

    def _resolve_endpoint(
        self, explicit: Optional[str], candidates: list, kind: str
    ) -> str:
        if explicit is not None:
            if explicit not in self._activities:
                raise InvalidProcessError(
                    [f"{kind} activity {explicit!r} is not in the process"]
                )
            return explicit
        if len(candidates) != 1:
            raise InvalidProcessError(
                [
                    f"process must have exactly one {kind} activity; "
                    f"found {sorted(candidates)!r}"
                ]
            )
        return candidates[0]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The process name."""
        return self._name

    @property
    def graph(self) -> DiGraph:
        """A copy of the control-flow graph."""
        return self._graph.copy()

    @property
    def source(self) -> str:
        """Name of the initiating activity."""
        return self._source

    @property
    def sink(self) -> str:
        """Name of the terminating activity."""
        return self._sink

    @property
    def activity_names(self) -> list:
        """Activity names in definition order."""
        return list(self._activities)

    @property
    def activity_count(self) -> int:
        """Number of activities (vertices)."""
        return len(self._activities)

    @property
    def edge_count(self) -> int:
        """Number of control-flow edges."""
        return self._graph.edge_count

    def activity(self, name: str) -> Activity:
        """Return the :class:`Activity` named ``name``."""
        return self._activities[name]

    def activities(self) -> Iterator[Activity]:
        """Iterate over activities in definition order."""
        return iter(self._activities.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over control-flow edges."""
        return self._graph.edges()

    def successors(self, name: str) -> set:
        """Direct successors of activity ``name``."""
        return self._graph.successors(name)

    def predecessors(self, name: str) -> set:
        """Direct predecessors of activity ``name``."""
        return self._graph.predecessors(name)

    def has_edge(self, source: str, target: str) -> bool:
        """Whether the control-flow edge exists."""
        return self._graph.has_edge(source, target)

    def condition(self, source: str, target: str) -> Condition:
        """Return the Boolean condition on edge ``(source, target)``.

        Edges with no explicit condition are unconditional
        (:class:`Always`).  Raises :class:`EdgeNotFoundError` for
        non-edges.
        """
        if not self._graph.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        return self._conditions.get((source, target), Always())

    def conditions(self) -> Dict[Edge, Condition]:
        """Return all *explicit* edge conditions (a copy)."""
        return dict(self._conditions)

    @property
    def is_acyclic(self) -> bool:
        """Whether the control-flow graph is a DAG."""
        return is_acyclic(self._graph)

    def with_conditions(
        self, conditions: Mapping[Edge, Condition]
    ) -> "ProcessModel":
        """Return a copy of this model with ``conditions`` replacing the
        current explicit edge conditions.

        Used to attach conditions mined by Section 7's learner to a graph
        mined by Algorithms 1–3.
        """
        return ProcessModel(
            self._name,
            activities=list(self._activities.values()),
            edges=list(self._graph.edges()),
            conditions=conditions,
            source=self._source,
            sink=self._sink,
        )

    def __repr__(self) -> str:
        return (
            f"ProcessModel({self._name!r}, activities="
            f"{self.activity_count}, edges={self.edge_count})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessModel):
            return NotImplemented
        return (
            self._name == other._name
            and set(self._activities) == set(other._activities)
            and self._graph.edge_set() == other._graph.edge_set()
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result
