"""Structural validation of process models.

Section 2 assumes a process graph has a single source and a single sink and
that every activity is reachable from the initiating activity.  The paper's
DAG algorithms additionally assume acyclicity.  :func:`validate_process`
checks all of this and returns a :class:`ValidationReport` instead of
raising, so callers can treat violations as data (the CLI prints them; the
engine refuses to run an invalid model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.graphs.traversal import (
    ancestors,
    descendants,
    find_cycle,
)
from repro.model.process import ProcessModel


@dataclass
class ValidationReport:
    """Outcome of validating a process model.

    Attributes
    ----------
    violations:
        Human-readable descriptions of structural problems; empty when the
        model is valid.
    warnings:
        Non-fatal observations (e.g. the graph is cyclic, which is legal in
        general but outside the DAG algorithms' assumptions).
    """

    violations: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """Whether no violations were found."""
        return not self.violations

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.errors.InvalidProcessError` on violations."""
        if self.violations:
            from repro.errors import InvalidProcessError

            raise InvalidProcessError(self.violations)


def validate_process(
    model: ProcessModel, require_acyclic: bool = False
) -> ValidationReport:
    """Validate the structure of ``model``.

    Checks performed:

    * the designated source has no incoming edges and the sink no outgoing
      edges;
    * every activity is reachable from the source (Definition 6 requires
      this of executions; a vertex unreachable in the *model* can never be
      executed);
    * every activity reaches the sink (otherwise some execution could never
      terminate);
    * with ``require_acyclic=True``, the graph must be a DAG (violation);
      otherwise a cycle only produces a warning.
    """
    report = ValidationReport()
    graph = model.graph

    if graph.in_degree(model.source) > 0:
        report.violations.append(
            f"source activity {model.source!r} has incoming edges"
        )
    if graph.out_degree(model.sink) > 0:
        report.violations.append(
            f"sink activity {model.sink!r} has outgoing edges"
        )

    if model.activity_count > 1:
        reachable = descendants(graph, model.source)
        reachable.add(model.source)
        unreachable = sorted(set(graph.nodes()) - reachable)
        if unreachable:
            report.violations.append(
                f"activities not reachable from the source: {unreachable}"
            )
        reaching = ancestors(graph, model.sink)
        reaching.add(model.sink)
        stranded = sorted(set(graph.nodes()) - reaching)
        if stranded:
            report.violations.append(
                f"activities that cannot reach the sink: {stranded}"
            )

    cycle = find_cycle(graph)
    if cycle is not None:
        message = f"graph contains a cycle: {' -> '.join(map(str, cycle))}"
        if require_acyclic:
            report.violations.append(message)
        else:
            report.warnings.append(message)

    return report
