"""Structural validation of process models.

Section 2 assumes a process graph has a single source and a single sink
and that every activity is reachable from the initiating activity.  The
paper's DAG algorithms additionally assume acyclicity.

Since the introduction of the :mod:`repro.lint` static analyzer,
:func:`validate_process` is a thin facade over the lint engine: it runs
the structural rule subset (``PM101``–``PM106``, ``PM109``, ``PM110``)
and re-packages the diagnostics as the familiar
:class:`ValidationReport`, so existing callers (the CLI, the workflow
engine's pre-flight check) keep working unchanged while gaining
per-activity messages — multiple-source/multiple-sink violations now
name each offending activity instead of a generic complaint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import lint_model
from repro.model.process import ProcessModel

#: The lint rules that constitute structural validity: endpoint shape
#: (PM101/PM102), uniqueness of source and sink (PM103/PM104),
#: reachability (PM105/PM106), and acyclicity (PM109/PM110 — warnings
#: unless ``require_acyclic``).
VALIDATION_CODES = (
    "PM101",
    "PM102",
    "PM103",
    "PM104",
    "PM105",
    "PM106",
    "PM109",
    "PM110",
)


@dataclass
class ValidationReport:
    """Outcome of validating a process model.

    Attributes
    ----------
    violations:
        Human-readable descriptions of structural problems; empty when
        the model is valid.
    warnings:
        Non-fatal observations (e.g. the graph is cyclic, which is
        legal in general but outside the DAG algorithms' assumptions).
    diagnostics:
        The underlying structured :class:`~repro.lint.Diagnostic`
        values, for callers that want codes and locations instead of
        strings.
    """

    violations: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """Whether no violations were found."""
        return not self.violations

    def raise_if_invalid(self) -> None:
        """Raise :class:`~repro.errors.InvalidProcessError` on violations."""
        if self.violations:
            from repro.errors import InvalidProcessError

            raise InvalidProcessError(self.violations)


def validate_process(
    model: ProcessModel, require_acyclic: bool = False
) -> ValidationReport:
    """Validate the structure of ``model`` via the lint engine.

    Checks performed (each backed by a stable lint code):

    * the designated source has no incoming edges (``PM101``) and the
      sink no outgoing edges (``PM102``);
    * no *other* activity looks like a source or a sink — extra
      initiating/terminating activities are named individually
      (``PM103``/``PM104``);
    * every activity is reachable from the source (``PM105``;
      Definition 6 requires this of executions — a vertex unreachable
      in the *model* can never be executed) and reaches the sink
      (``PM106``, otherwise some execution could never terminate);
    * with ``require_acyclic=True`` cycles and 2-cycles are violations
      (``PM110``/``PM109``); otherwise they only produce warnings.
    """
    config = LintConfig(
        select=frozenset(VALIDATION_CODES), dag_mode=require_acyclic
    )
    lint_report = lint_model(model, config=config)
    report = ValidationReport(diagnostics=list(lint_report.diagnostics))
    for diagnostic in lint_report.diagnostics:
        if diagnostic.severity is Severity.ERROR:
            report.violations.append(diagnostic.message)
        else:
            report.warnings.append(diagnostic.message)
    return report
