"""Process model substrate (Section 2, Definition 1 of the paper).

A business process is a directed activity graph together with an output
function per activity and a Boolean condition per edge:

* :mod:`repro.model.activity` — activities and their output specifications;
* :mod:`repro.model.conditions` — the Boolean condition expression AST
  (comparisons over output parameters combined with and/or/not), which is
  both evaluatable and printable;
* :mod:`repro.model.process` — :class:`ProcessModel` itself;
* :mod:`repro.model.builder` — a fluent builder for defining processes;
* :mod:`repro.model.validate` — structural validation (single source/sink,
  reachability, acyclicity where claimed).
"""

from repro.model.activity import Activity, OutputSpec
from repro.model.builder import ProcessBuilder
from repro.model.conditions import (
    Always,
    And,
    Comparison,
    Condition,
    Never,
    Not,
    Or,
    always,
    attr_ge,
    attr_gt,
    attr_le,
    attr_lt,
    never,
    parse_condition,
)
from repro.model.evolution import EvolutionResult, evolve_model
from repro.model.process import ProcessModel
from repro.model.serialize import (
    load_model,
    model_from_text,
    model_to_text,
    save_model,
)
from repro.model.validate import ValidationReport, validate_process

__all__ = [
    "Activity",
    "Always",
    "And",
    "Comparison",
    "Condition",
    "EvolutionResult",
    "Never",
    "Not",
    "Or",
    "OutputSpec",
    "ProcessBuilder",
    "ProcessModel",
    "ValidationReport",
    "always",
    "attr_ge",
    "attr_gt",
    "attr_le",
    "attr_lt",
    "evolve_model",
    "load_model",
    "model_from_text",
    "model_to_text",
    "never",
    "parse_condition",
    "save_model",
    "validate_process",
]
