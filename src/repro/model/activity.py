"""Activities and their output specifications.

Section 2 treats an activity as "a function that modifies the state of the
process": each activity has an output vector ``o(u)`` in ``N^k``.  For the
simulator we need a way to *sample* that output; :class:`OutputSpec`
describes the vector's arity and value ranges, and activities carry an
optional sampler callable so that scripted processes (e.g. the conditions
mining benches) can control outputs exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

OutputSampler = Callable[[random.Random], Tuple[float, ...]]


@dataclass(frozen=True)
class OutputSpec:
    """Shape of an activity's output vector.

    Attributes
    ----------
    arity:
        Number of output parameters ``k``.  The paper's Example 1 uses
        ``k = 2`` everywhere; any ``k >= 0`` is supported.
    low, high:
        Inclusive integer range each parameter is sampled from when no
        custom sampler overrides it.  Outputs are natural numbers in the
        paper (``N^k``).
    """

    arity: int = 2
    low: int = 0
    high: int = 100

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ValueError("output arity must be >= 0")
        if self.low > self.high:
            raise ValueError("output range is empty (low > high)")

    def sample(self, rng: random.Random) -> Tuple[float, ...]:
        """Sample an output vector uniformly from the spec's range."""
        return tuple(
            float(rng.randint(self.low, self.high)) for _ in range(self.arity)
        )


@dataclass(frozen=True)
class Activity:
    """A named activity of a business process.

    Attributes
    ----------
    name:
        Unique activity name within its process.
    output_spec:
        Shape of the activity's output vector.
    duration:
        Nominal execution duration in simulated time units; the log's
        START/END timestamps are ``duration`` apart.  The paper's analysis
        treats activities as instantaneous, which corresponds to
        ``duration = 0``; the default of 1 exercises the more general
        START/END record handling.
    sampler:
        Optional callable ``rng -> tuple`` overriding random output
        sampling.  Used by scripted processes to make edge conditions
        deterministic functions of controlled outputs.
    """

    name: str
    output_spec: OutputSpec = field(default_factory=OutputSpec)
    duration: float = 1.0
    sampler: Optional[OutputSampler] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("activity name must be non-empty")
        if self.duration < 0:
            raise ValueError("activity duration must be >= 0")

    def sample_output(self, rng: random.Random) -> Tuple[float, ...]:
        """Produce one output vector for a completed execution of this
        activity, using the custom sampler when present."""
        if self.sampler is not None:
            output = tuple(float(v) for v in self.sampler(rng))
            if len(output) != self.output_spec.arity:
                raise ValueError(
                    f"sampler for activity {self.name!r} produced "
                    f"{len(output)} values, expected "
                    f"{self.output_spec.arity}"
                )
            return output
        return self.output_spec.sample(rng)
