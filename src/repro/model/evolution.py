"""Process model evolution from successful executions.

The paper's introduction: the technique "can also allow the evolution of
the current process model into future versions of the model by
incorporating feedback from successful process executions".

:func:`evolve_model` takes the currently deployed model and a log of
recent (successful) executions, mines the log, and produces the next
model version:

* activities the log introduced are added;
* control-flow the log exhibited but the model lacked is added;
* model edges whose orderings the log *contradicted* (mined
  independence) are dropped;
* model edges merely unexercised by this log are kept — absence of
  evidence is not evidence of removal (the log may simply not cover the
  branch), unless ``prune_unobserved=True``.

Existing edge conditions are carried over for surviving edges; newly
added edges are unconditional unless a conditions miner is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.analysis.diffing import ModelLogDiff, diff_against_log
from repro.core.general_dag import mine_general_dag
from repro.logs.event_log import EventLog
from repro.model.activity import Activity
from repro.model.process import ProcessModel

Edge = Tuple[str, str]


@dataclass(frozen=True)
class EvolutionResult:
    """Outcome of one evolution step.

    Attributes
    ----------
    model:
        The next model version.
    added_activities, added_edges, removed_edges:
        The applied changes.
    diff:
        The full model-vs-log diff the changes were derived from.
    """

    model: ProcessModel
    added_activities: FrozenSet[str]
    added_edges: FrozenSet[Edge]
    removed_edges: FrozenSet[Edge]
    diff: ModelLogDiff

    @property
    def changed(self) -> bool:
        """Whether the evolution step changed anything."""
        return bool(
            self.added_activities or self.added_edges or self.removed_edges
        )

    def summary(self) -> str:
        """One-paragraph change summary."""
        if not self.changed:
            return "no changes: the log confirms the current model"
        parts = []
        if self.added_activities:
            parts.append(
                f"added activities {sorted(self.added_activities)}"
            )
        if self.added_edges:
            parts.append(
                "added edges "
                + ", ".join(f"{a}->{b}" for a, b in sorted(self.added_edges))
            )
        if self.removed_edges:
            parts.append(
                "removed edges "
                + ", ".join(
                    f"{a}->{b}" for a, b in sorted(self.removed_edges)
                )
            )
        return "; ".join(parts)


def evolve_model(
    model: ProcessModel,
    log: EventLog,
    threshold: int = 0,
    prune_unobserved: bool = False,
    learn_conditions: bool = False,
    version_name: Optional[str] = None,
) -> EvolutionResult:
    """Produce the next version of ``model`` from a log of executions.

    Parameters
    ----------
    model:
        The currently deployed process model.
    log:
        Recent successful executions.
    threshold:
        Section 6 noise threshold for the mining pass.
    prune_unobserved:
        Also remove model edges the log never exercised (only sound when
        the log is known to cover the whole process).
    learn_conditions:
        Learn conditions (Section 7) for added edges from the log's
        outputs.
    version_name:
        Name of the evolved model; defaults to ``"<name>-v2"``.
    """
    log.require_non_empty()
    mined = mine_general_dag(log, threshold=threshold)
    diff = diff_against_log(model, log, mined=mined)

    added_edges = set(diff.missing_edges)
    # Edges into/out of brand-new activities.
    new_activities = set(diff.unmodelled_activities)
    for a, b in mined.edges():
        if a in new_activities or b in new_activities:
            added_edges.add((a, b))

    removed_edges = {
        (a, b)
        for a, b in model.graph.edges()
        if (a, b) in diff.contradicted_dependencies
    }
    if prune_unobserved:
        removed_edges |= set(diff.unused_edges)

    surviving = (model.graph.edge_set() - removed_edges) | added_edges
    activities = [
        model.activity(name) for name in model.activity_names
    ] + [Activity(name) for name in sorted(new_activities)]

    conditions = {
        edge: condition
        for edge, condition in model.conditions().items()
        if edge in surviving
    }
    if learn_conditions and added_edges:
        # Imported lazily: repro.core.conditions itself imports the
        # classifier, which renders rules into repro.model conditions —
        # a top-level import here would close an import cycle.
        from repro.core.conditions import ConditionsMiner

        miner = ConditionsMiner()
        for edge in sorted(added_edges):
            learned = miner.mine_edge(log, edge)
            if learned.learnable:
                conditions[edge] = learned.condition

    # Evolution never deletes activities, so the source/sink
    # designations always survive.
    evolved = ProcessModel(
        version_name or f"{model.name}-v2",
        activities=activities,
        edges=sorted(surviving),
        conditions=conditions,
        source=model.source,
        sink=model.sink,
    )
    return EvolutionResult(
        model=evolved,
        added_activities=frozenset(new_activities),
        added_edges=frozenset(added_edges),
        removed_edges=frozenset(removed_edges),
        diff=diff,
    )
