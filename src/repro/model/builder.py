"""Fluent builder for process models.

Defining a process literally (activities, edges, conditions in one call) is
noisy for the larger Flowmark-style processes; :class:`ProcessBuilder`
provides a compact incremental API:

>>> from repro.model.builder import ProcessBuilder
>>> from repro.model.conditions import attr_gt
>>> model = (
...     ProcessBuilder("review")
...     .activity("A").activity("B").activity("C").activity("E")
...     .edge("A", "B")
...     .edge("A", "C", condition=attr_gt(0, 50))
...     .edge("B", "E").edge("C", "E")
...     .build()
... )
>>> model.source, model.sink
('A', 'E')
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidProcessError
from repro.model.activity import Activity, OutputSampler, OutputSpec
from repro.model.conditions import Condition
from repro.model.process import ProcessModel

Edge = Tuple[str, str]


class ProcessBuilder:
    """Incrementally define a :class:`ProcessModel`.

    All mutator methods return ``self`` for chaining.  ``edge`` auto-creates
    endpoints that have not been declared, using default activity settings,
    so simple graph-shaped processes can be defined edge-list-style.
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._activities: Dict[str, Activity] = {}
        self._edges: List[Edge] = []
        self._conditions: Dict[Edge, Condition] = {}
        self._source: Optional[str] = None
        self._sink: Optional[str] = None

    def activity(
        self,
        name: str,
        arity: int = 2,
        low: int = 0,
        high: int = 100,
        duration: float = 1.0,
        sampler: Optional[OutputSampler] = None,
    ) -> "ProcessBuilder":
        """Declare (or redefine) an activity."""
        spec = OutputSpec(arity=arity, low=low, high=high)
        self._activities[name] = Activity(
            name, output_spec=spec, duration=duration, sampler=sampler
        )
        return self

    def edge(
        self,
        source: str,
        target: str,
        condition: Optional[Condition] = None,
    ) -> "ProcessBuilder":
        """Add a control-flow edge, auto-declaring unknown endpoints."""
        for endpoint in (source, target):
            if endpoint not in self._activities:
                self.activity(endpoint)
        pair = (source, target)
        if pair not in self._edges:
            self._edges.append(pair)
        if condition is not None:
            self._conditions[pair] = condition
        return self

    def chain(self, *names: str) -> "ProcessBuilder":
        """Add the edges of a linear chain ``names[0] -> names[1] -> ...``."""
        if len(names) < 2:
            raise InvalidProcessError(["chain needs at least two activities"])
        # Sliding-window pairing: the offset slice is one shorter
        # by construction, so strict pairing does not apply.
        for source, target in zip(names, names[1:], strict=False):
            self.edge(source, target)
        return self

    def source(self, name: str) -> "ProcessBuilder":
        """Explicitly designate the initiating activity."""
        self._source = name
        return self

    def sink(self, name: str) -> "ProcessBuilder":
        """Explicitly designate the terminating activity."""
        self._sink = name
        return self

    def constant_output(
        self, name: str, values: Tuple[float, ...]
    ) -> "ProcessBuilder":
        """Give activity ``name`` a fixed output vector (handy in tests)."""
        fixed = tuple(float(v) for v in values)

        def sampler(_rng: random.Random) -> Tuple[float, ...]:
            return fixed

        current = self._activities.get(name)
        spec = OutputSpec(arity=len(fixed))
        duration = current.duration if current is not None else 1.0
        self._activities[name] = Activity(
            name, output_spec=spec, duration=duration, sampler=sampler
        )
        return self

    def build(self) -> ProcessModel:
        """Construct the immutable :class:`ProcessModel`."""
        return ProcessModel(
            self._name,
            activities=list(self._activities.values()),
            edges=self._edges,
            conditions=self._conditions,
            source=self._source,
            sink=self._sink,
        )
