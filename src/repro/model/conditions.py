"""Boolean edge-condition expressions.

The paper annotates every edge ``(u, v)`` with a Boolean function
``f_(u,v) : N^k -> {0, 1}`` evaluated on the *output vector* of activity
``u`` (Definition 1; Section 7 assumes conditions depend only on the source
activity's output).  Example 1 shows the intended shape::

    f_(C,D) = (o(C)[1] > 0) and (o(C)[2] < o(C)[1])

This module provides a tiny expression AST with exactly that power:

* :class:`Comparison` — an output parameter compared with a constant or
  with another output parameter;
* :class:`And` / :class:`Or` / :class:`Not` — Boolean combinators;
* :class:`Always` / :class:`Never` — the constant conditions.

Conditions are immutable, hashable, printable (``str`` renders the paper's
notation) and evaluatable against an output vector.  :func:`parse_condition`
parses the printed form back, which the CLI and tests use for round-trips.
"""

from __future__ import annotations

import ast
import operator
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence, Union

from repro.errors import ConditionError

#: An activity's output vector.  Section 2 models outputs as vectors in
#: ``N^k``; positions are 0-based here (the paper's prose uses 1-based).
OutputVector = Sequence[float]

_OPERATORS: Mapping[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


class Condition:
    """Abstract base class for edge conditions.

    Subclasses implement :meth:`evaluate` and ``__str__``; combinators are
    available through ``&``, ``|`` and ``~``.
    """

    def evaluate(self, output: OutputVector) -> bool:
        """Evaluate the condition on an activity output vector."""
        raise NotImplementedError

    def __call__(self, output: OutputVector) -> bool:
        return self.evaluate(output)

    def __and__(self, other: "Condition") -> "Condition":
        return And(self, other)

    def __or__(self, other: "Condition") -> "Condition":
        return Or(self, other)

    def __invert__(self) -> "Condition":
        return Not(self)


@dataclass(frozen=True)
class Always(Condition):
    """The constant-true condition (an unconditional control-flow edge)."""

    def evaluate(self, output: OutputVector) -> bool:
        return True

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Never(Condition):
    """The constant-false condition (useful in tests and ablations)."""

    def evaluate(self, output: OutputVector) -> bool:
        return False

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Comparison(Condition):
    """Compare output parameter ``o[index]`` with a constant or parameter.

    ``rhs`` is either a number (compare with a constant) or the string
    ``"o[<j>]"`` form produced by :func:`param` references — internally we
    store an integer index wrapped in :class:`ParamRef`.
    """

    index: int
    op: str
    rhs: Union[float, "ParamRef"]

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise ConditionError(f"unknown comparison operator {self.op!r}")
        if self.index < 0:
            raise ConditionError("output parameter index must be >= 0")

    def evaluate(self, output: OutputVector) -> bool:
        try:
            left = output[self.index]
        except IndexError as exc:
            raise ConditionError(
                f"output vector of length {len(output)} has no "
                f"parameter {self.index}"
            ) from exc
        if isinstance(self.rhs, ParamRef):
            try:
                right: float = output[self.rhs.index] + self.rhs.offset
            except IndexError as exc:
                raise ConditionError(
                    f"output vector of length {len(output)} has no "
                    f"parameter {self.rhs.index}"
                ) from exc
        else:
            right = self.rhs
        return _OPERATORS[self.op](left, right)

    def __str__(self) -> str:
        rhs = str(self.rhs)
        return f"o[{self.index}] {self.op} {rhs}"


@dataclass(frozen=True)
class ParamRef:
    """A reference to another output parameter on a comparison's right
    side, optionally shifted by a constant: ``o[j] + offset``.

    The offset form is what the pairwise-feature conditions learner
    produces — a rule ``o[i] - o[j] <= t`` renders as
    ``o[i] <= o[j] + t``.
    """

    index: int
    offset: float = 0.0

    def __str__(self) -> str:
        if self.offset == 0:
            return f"o[{self.index}]"
        sign = "+" if self.offset > 0 else "-"
        return f"o[{self.index}] {sign} {abs(self.offset):g}"


@dataclass(frozen=True)
class And(Condition):
    """Conjunction of two conditions."""

    left: Condition
    right: Condition

    def evaluate(self, output: OutputVector) -> bool:
        return self.left.evaluate(output) and self.right.evaluate(output)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Condition):
    """Disjunction of two conditions."""

    left: Condition
    right: Condition

    def evaluate(self, output: OutputVector) -> bool:
        return self.left.evaluate(output) or self.right.evaluate(output)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Not(Condition):
    """Negation of a condition."""

    operand: Condition

    def evaluate(self, output: OutputVector) -> bool:
        return not self.operand.evaluate(output)

    def __str__(self) -> str:
        return f"(not {self.operand})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------
def always() -> Condition:
    """Return the constant-true condition."""
    return Always()


def never() -> Condition:
    """Return the constant-false condition."""
    return Never()


def attr_lt(index: int, value: float) -> Condition:
    """Condition ``o[index] < value``."""
    return Comparison(index, "<", value)


def attr_le(index: int, value: float) -> Condition:
    """Condition ``o[index] <= value``."""
    return Comparison(index, "<=", value)


def attr_gt(index: int, value: float) -> Condition:
    """Condition ``o[index] > value``."""
    return Comparison(index, ">", value)


def attr_ge(index: int, value: float) -> Condition:
    """Condition ``o[index] >= value``."""
    return Comparison(index, ">=", value)


def param(index: int, offset: float = 0.0) -> ParamRef:
    """Reference parameter ``o[index]`` (plus an optional constant
    offset) on a comparison's right-hand side."""
    return ParamRef(index, offset)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------
def parse_condition(text: str) -> Condition:
    """Parse the printed form of a condition back into an AST.

    The grammar is the Python expression grammar restricted to ``and``,
    ``or``, ``not``, comparisons, numeric literals, the names ``true`` /
    ``false`` and subscripts ``o[<int>]``.

    Examples
    --------
    >>> str(parse_condition("(o[0] > 0 and o[1] < o[0])"))
    '(o[0] > 0 and o[1] < o[0])'
    """
    try:
        tree = ast.parse(text.strip(), mode="eval")
    except SyntaxError as exc:
        raise ConditionError(f"cannot parse condition {text!r}: {exc}") from exc
    return _from_ast(tree.body, text)


_AST_OPS = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}


def _from_ast(node: ast.AST, text: str) -> Condition:
    if isinstance(node, ast.BoolOp):
        combinator = And if isinstance(node.op, ast.And) else Or
        result = _from_ast(node.values[0], text)
        for value in node.values[1:]:
            result = combinator(result, _from_ast(value, text))
        return result
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        return Not(_from_ast(node.operand, text))
    if isinstance(node, ast.Compare):
        if len(node.ops) != 1 or len(node.comparators) != 1:
            raise ConditionError(
                f"chained comparisons are not supported in {text!r}"
            )
        op_type = type(node.ops[0])
        if op_type not in _AST_OPS:
            raise ConditionError(f"unsupported operator in {text!r}")
        index = _subscript_index(node.left, text)
        rhs = _rhs_value(node.comparators[0], text)
        return Comparison(index, _AST_OPS[op_type], rhs)
    if isinstance(node, ast.Name):
        if node.id == "true":
            return Always()
        if node.id == "false":
            return Never()
    if isinstance(node, ast.Constant) and isinstance(node.value, bool):
        return Always() if node.value else Never()
    raise ConditionError(f"unsupported condition syntax in {text!r}")


def _subscript_index(node: ast.AST, text: str) -> int:
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == "o"
    ):
        index_node = node.slice
        if isinstance(index_node, ast.Constant) and isinstance(
            index_node.value, int
        ):
            return index_node.value
    raise ConditionError(
        f"expected an output reference like o[0] in {text!r}"
    )


def _rhs_value(node: ast.AST, text: str) -> Union[float, ParamRef]:
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = node.operand
        if isinstance(inner, ast.Constant) and isinstance(
            inner.value, (int, float)
        ):
            return -inner.value
    if isinstance(node, ast.Subscript):
        return ParamRef(_subscript_index(node, text))
    # o[j] + c  /  o[j] - c  — the offset form.
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, (ast.Add, ast.Sub))
        and isinstance(node.left, ast.Subscript)
        and isinstance(node.right, ast.Constant)
        and isinstance(node.right.value, (int, float))
    ):
        offset = float(node.right.value)
        if isinstance(node.op, ast.Sub):
            offset = -offset
        return ParamRef(_subscript_index(node.left, text), offset)
    raise ConditionError(
        f"expected a number or output reference on the right side of a "
        f"comparison in {text!r}"
    )
