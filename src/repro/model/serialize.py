"""Text serialization of process models.

A small line-oriented format so purported models can be stored in files,
diffed in code review, and fed to the CLI's ``compare`` and ``evolve``
commands::

    process Upload_and_Notify
    source Start
    sink End
    activity Start arity=2 duration=1
    activity Upload arity=2 duration=1
    edge Start Upload
    edge Upload Notify_User if o[0] > 30

Lines are whitespace-separated; ``#`` starts a comment; the ``if``
clause uses the condition grammar of
:func:`repro.model.conditions.parse_condition`.  Activities referenced
only by edges are declared implicitly with defaults, so a bare edge list
is already a valid model file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import InvalidProcessError
from repro.model.activity import Activity, OutputSpec
from repro.model.conditions import Always, Condition, parse_condition
from repro.model.process import ProcessModel

PathOrStr = Union[str, Path]
Edge = Tuple[str, str]


def _format_scalar(value: float) -> str:
    """The explicit repr policy for serialized numbers.

    Integral values render as ints (``1``, not ``1.0``), everything
    else as ``repr(float(value))`` — shortest text that round-trips
    exactly, unlike presentation specs such as ``:g`` which silently
    truncate to six significant digits.
    """
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def model_to_text(model: ProcessModel) -> str:
    """Serialize ``model`` into the line format."""
    lines = [
        f"process {model.name}",
        f"source {model.source}",
        f"sink {model.sink}",
    ]
    for activity in model.activities():
        spec = activity.output_spec
        lines.append(
            f"activity {activity.name} arity={spec.arity} "
            f"low={spec.low} high={spec.high} "
            f"duration={_format_scalar(activity.duration)}"
        )
    explicit = model.conditions()
    for source, target in sorted(model.graph.edges()):
        condition = explicit.get((source, target))
        if condition is None or isinstance(condition, Always):
            lines.append(f"edge {source} {target}")
        else:
            lines.append(f"edge {source} {target} if {condition}")
    return "\n".join(lines) + "\n"


def save_model(model: ProcessModel, path: PathOrStr) -> None:
    """Write ``model`` to ``path`` in the line format.

    The write goes through :func:`repro.resilience.durable.
    durable_write` (temp sibling + rename), so an interrupted save
    never leaves a truncated model file behind.
    """
    from repro.resilience.durable import durable_write

    durable_write(
        Path(path), model_to_text(model).encode("utf-8")
    )


def model_from_text(text: str) -> ProcessModel:
    """Parse a model from its line format.

    Raises
    ------
    InvalidProcessError
        On unknown directives, malformed activity attributes, duplicate
        declarations, or a malformed condition.
    """
    name: Optional[str] = None
    source: Optional[str] = None
    sink: Optional[str] = None
    activities: Dict[str, Activity] = {}
    edges: List[Edge] = []
    conditions: Dict[Edge, Condition] = {}

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        directive = fields[0]
        try:
            if directive == "process" and len(fields) == 2:
                name = fields[1]
            elif directive == "source" and len(fields) == 2:
                source = fields[1]
            elif directive == "sink" and len(fields) == 2:
                sink = fields[1]
            elif directive == "activity" and len(fields) >= 2:
                activities[fields[1]] = _parse_activity(
                    fields[1], fields[2:]
                )
            elif directive == "edge" and len(fields) >= 3:
                edge = (fields[1], fields[2])
                edges.append(edge)
                if len(fields) > 3:
                    if fields[3] != "if":
                        raise ValueError(
                            "expected 'if <condition>' after the edge"
                        )
                    conditions[edge] = parse_condition(
                        " ".join(fields[4:])
                    )
            else:
                raise ValueError(f"unknown directive {directive!r}")
        except (ValueError, InvalidProcessError) as exc:
            raise InvalidProcessError(
                [f"line {line_number}: {exc}"]
            ) from exc

    if name is None:
        name = "model"
    for edge_source, edge_target in edges:
        for endpoint in (edge_source, edge_target):
            if endpoint not in activities:
                activities[endpoint] = Activity(endpoint)
    return ProcessModel(
        name,
        activities=list(activities.values()),
        edges=edges,
        conditions=conditions,
        source=source,
        sink=sink,
    )


def load_model(path: PathOrStr) -> ProcessModel:
    """Read a model from ``path``."""
    return model_from_text(Path(path).read_text(encoding="utf-8"))


def _parse_activity(name: str, attributes: List[str]) -> Activity:
    arity, low, high, duration = 2, 0, 100, 1.0
    for attribute in attributes:
        key, _, value = attribute.partition("=")
        if not value:
            raise ValueError(
                f"activity attribute {attribute!r} is not key=value"
            )
        if key == "arity":
            arity = int(value)
        elif key == "low":
            low = int(value)
        elif key == "high":
            high = int(value)
        elif key == "duration":
            duration = float(value)
        else:
            raise ValueError(f"unknown activity attribute {key!r}")
    return Activity(
        name,
        output_spec=OutputSpec(arity=arity, low=low, high=high),
        duration=duration,
    )
