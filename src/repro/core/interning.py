"""Vertex interning and packed pair codes for the fast mining core.

The pure-Python pipeline of :mod:`repro.core.general_dag` historically
manipulated tuples of activity labels — ``("A", "B")`` — in every set
operation of steps 2–6.  Hashing and comparing tuples of strings (or, for
Algorithm 3, tuples of ``(activity, occurrence)`` tuples) dominates the
constant factor of the whole miner.

This module interns every vertex label into a dense integer id *once per
mining run* and packs an ordered pair ``(u, v)`` into the single integer
``id(u) * n + id(v)`` where ``n`` is the total number of interned
vertices.  All subsequent set algebra (noise thresholding, 2-cycle
removal, SCC pruning, per-variant induced edge sets, transitive-reduction
memo keys) runs over small ints — the cheapest hashable values CPython
has — and labels are only restored when the final graph is materialized.

The id assignment is deterministic (labels sorted by ``repr``) so that
checkpoints and parallel workers sharing a table agree byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Sequence,
    Tuple,
)

Vertex = Hashable
Pair = Tuple[Vertex, Vertex]


class InternTable:
    """A bidirectional vertex-label <-> dense-id mapping.

    The table is immutable once built: packing requires the modulus ``n``
    (the vertex count) to be fixed, otherwise previously packed codes
    would silently change meaning.

    Examples
    --------
    >>> table = InternTable(["B", "A", "C"])
    >>> table.labels
    ('A', 'B', 'C')
    >>> table.pack(("A", "C"))
    2
    >>> table.unpack(2)
    ('A', 'C')
    """

    __slots__ = ("_labels", "_index")

    def __init__(self, labels: Iterable[Vertex]) -> None:
        # Sorted by repr for run-to-run determinism over arbitrary
        # hashable labels (strings and (activity, occurrence) tuples
        # never compare against each other within one log).
        self._labels: Tuple[Vertex, ...] = tuple(
            sorted(set(labels), key=repr)
        )
        self._index: Dict[Vertex, int] = {
            label: i for i, label in enumerate(self._labels)
        }

    @property
    def labels(self) -> Tuple[Vertex, ...]:
        """All labels, in id order."""
        return self._labels

    @property
    def index(self) -> Dict[Vertex, int]:
        """The label -> id mapping (treat as read-only)."""
        return self._index

    def __len__(self) -> int:
        return len(self._labels)

    def id_of(self, label: Vertex) -> int:
        """The dense id of ``label``; raises ``KeyError`` if unknown."""
        return self._index[label]

    def label_of(self, vertex_id: int) -> Vertex:
        """The label with id ``vertex_id``."""
        return self._labels[vertex_id]

    # ------------------------------------------------------------------
    # Packed pair codes
    # ------------------------------------------------------------------
    def pack(self, pair: Pair) -> int:
        """Pack a label pair into the single int ``u_id * n + v_id``."""
        n = len(self._labels)
        return self._index[pair[0]] * n + self._index[pair[1]]

    def unpack(self, code: int) -> Pair:
        """Invert :meth:`pack`."""
        u, v = divmod(code, len(self._labels))
        return (self._labels[u], self._labels[v])

    def pack_pairs(self, pairs: Iterable[Pair]) -> FrozenSet[int]:
        """Pack a collection of label pairs into a frozenset of codes."""
        n = len(self._labels)
        index = self._index
        return frozenset(index[u] * n + index[v] for u, v in pairs)

    def unpack_pairs(self, codes: Iterable[int]) -> List[Pair]:
        """Unpack codes back into label pairs (in input order)."""
        n = len(self._labels)
        labels = self._labels
        return [
            (labels[code // n], labels[code % n]) for code in codes
        ]

    def pack_vertices(self, vertices: Iterable[Vertex]) -> FrozenSet[int]:
        """Intern a collection of vertex labels into a frozenset of ids."""
        index = self._index
        return frozenset(index[v] for v in vertices)


@dataclass(frozen=True)
class PackedVariant:
    """One deduplicated trace variant in packed form.

    Attributes
    ----------
    vertices:
        Interned vertex ids completed by the variant.
    pairs:
        Packed ordered-pair codes (``u_id * n + v_id``).
    overlaps:
        Packed canonical overlapping-pair codes.
    multiplicity:
        How many log executions collapsed into this variant.
    """

    vertices: FrozenSet[int]
    pairs: FrozenSet[int]
    overlaps: FrozenSet[int]
    multiplicity: int


def intern_variants(
    variants: Sequence[Tuple[object, int]],
) -> Tuple[InternTable, List[PackedVariant]]:
    """Intern deduplicated prepared executions into packed variants.

    Parameters
    ----------
    variants:
        ``(prepared, multiplicity)`` tuples where ``prepared`` exposes
        ``vertices``, ``pairs`` and ``overlaps`` collections of hashable
        labels (duck-typed to avoid importing the dataclass from
        :mod:`repro.core.general_dag`).

    Returns
    -------
    (InternTable, list[PackedVariant])
        The shared table and one packed variant per input entry, in
        order.  The table covers pair and overlap endpoints as well as
        the vertex sets, mirroring the legacy pipeline in which
        ``DiGraph.add_edge`` auto-created endpoint nodes.
    """
    labels: set = set()
    for prepared, _ in variants:
        labels.update(prepared.vertices)  # type: ignore[attr-defined]
        labels.update(
            chain.from_iterable(prepared.pairs)  # type: ignore[attr-defined]
        )
        labels.update(
            chain.from_iterable(prepared.overlaps)  # type: ignore[attr-defined]
        )
    table = InternTable(labels)
    packed = [
        PackedVariant(
            vertices=table.pack_vertices(prepared.vertices),  # type: ignore[attr-defined]
            pairs=table.pack_pairs(prepared.pairs),  # type: ignore[attr-defined]
            overlaps=table.pack_pairs(prepared.overlaps),  # type: ignore[attr-defined]
            multiplicity=multiplicity,
        )
        for prepared, multiplicity in variants
    ]
    return table, packed
