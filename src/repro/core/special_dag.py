"""Algorithm 1 (Special DAG) — Section 3 of the paper.

Assumes the process graph is acyclic and *every* activity appears exactly
once in each execution.  Under those assumptions the minimal conformal
graph is unique, and Algorithm 1 finds it:

1. collect every ordered pair ``(u, v)`` (``u`` terminates before ``v``
   starts) over all executions;
2. remove pairs present in both directions (2-cycles — such activities are
   independent);
3. transitively reduce the remaining DAG (Appendix Algorithm 4).

Complexity ``O(n²m)`` for ``n`` activities and ``m`` executions; the pair
collection dominates, exactly as in Theorem 4.  Like Algorithm 2, the
implementation extracts pairs once per distinct trace variant and runs
steps 2–3 and the reduction over interned packed pair codes.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.general_dag import prepare_executions
from repro.core.interning import InternTable
from repro.errors import CycleError, MiningError
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import transitive_reduction_packed
from repro.logs.event_log import EventLog
from repro.obs.recorder import NULL_RECORDER, Recorder


def mine_special_dag(
    log: EventLog,
    strict: bool = True,
    jobs: Optional[int] = None,
    recorder: Recorder = NULL_RECORDER,
) -> DiGraph:
    """Mine the minimal conformal graph of ``log`` with Algorithm 1.

    Parameters
    ----------
    log:
        Executions of one process.  Algorithm 1's preconditions — every
        activity in every execution, acyclic process — are checked when
        ``strict`` is true.
    strict:
        When true (default), raise :class:`MiningError` if some execution
        misses an activity or repeats one, instead of returning a graph
        whose minimality guarantee is void.
    jobs:
        Worker processes for pair extraction (``None`` defers to
        ``REPRO_JOBS``; 1 = serial).
    recorder:
        :mod:`repro.obs` sink for spans (``mine/prepare``,
        ``mine/step3_filters``, ``mine/step5_reduce``,
        ``mine/step6_assemble``) and the mining counters; the shared
        no-op recorder by default.

    Returns
    -------
    DiGraph
        The unique minimal conformal graph (Theorem 4).

    Examples
    --------
    Example 6 of the paper — log ``{ABCDE, ACDBE, ACBDE}``:

    >>> from repro.logs.event_log import EventLog
    >>> log = EventLog.from_sequences(["ABCDE", "ACDBE", "ACBDE"])
    >>> sorted(mine_special_dag(log).edges())
    [('A', 'B'), ('A', 'C'), ('B', 'E'), ('C', 'D'), ('D', 'E')]
    """
    log.require_non_empty()
    activities = log.activities()
    if strict:
        _check_preconditions(log, activities)

    # Step 2 — pair sets, extracted once per distinct trace variant.
    with recorder.span("mine/prepare"):
        prepared = prepare_executions(
            list(log), labelled=False, jobs=jobs, recorder=recorder
        )
        distinct = set(prepared)

        labels: set = set(activities)
        for variant in distinct:
            labels.update(variant.vertices)
            for u, v in variant.pairs:
                labels.add(u)
                labels.add(v)
        table = InternTable(labels)
        n = max(len(table), 1)

    with recorder.span("mine/step3_filters"):
        edges: Set[int] = set()
        independent: Set[int] = set()
        # Pack inline into the two mutable sets rather than through
        # ``pack_pairs``: one intermediate frozenset per variant (two
        # per overlap-bearing variant) never gets allocated.
        index = table.index
        for variant in distinct:
            edges.update(
                index[u] * n + index[v] for u, v in variant.pairs
            )
            for u, v in variant.overlaps:
                # Overlapping activities are independent (Section 2) —
                # equivalent to having seen the pair in both orders.
                u_id = index[u]
                v_id = index[v]
                independent.add(u_id * n + v_id)
                independent.add(v_id * n + u_id)
        pairs_extracted = len(edges)
        edges -= independent

        # Step 3 — drop 2-cycles.
        edges = {
            code
            for code in edges
            if (code % n) * n + (code // n) not in edges
        }

    with recorder.span("mine/step5_reduce"):
        try:
            kept = transitive_reduction_packed(frozenset(edges), n)
        except CycleError as exc:
            raise MiningError(
                "the followings graph is cyclic after removing 2-cycles; "
                "the log violates Algorithm 1's every-activity-every-"
                "execution assumption — use Algorithm 2 "
                "(mine_general_dag) instead"
            ) from exc

    with recorder.span("mine/step6_assemble"):
        graph = DiGraph(nodes=sorted(activities))
        table_labels = table.labels
        for code in kept:
            graph.add_edge(table_labels[code // n], table_labels[code % n])
    recorder.count("repro_mine_executions_total", len(log))
    recorder.count("repro_mine_variants_total", len(distinct))
    recorder.count("repro_mine_pairs_extracted_total", pairs_extracted)
    recorder.gauge(
        "repro_mine_edges", graph.edge_count, labels={"stage": "step6"}
    )
    return graph


def _check_preconditions(log: EventLog, activities: frozenset) -> None:
    problem: Optional[str] = None
    for execution in log:
        sequence = execution.sequence
        if len(set(sequence)) != len(sequence):
            problem = (
                f"execution {execution.execution_id!r} repeats an "
                f"activity; Algorithm 1 requires exactly one instance each"
            )
            break
        if set(sequence) != set(activities):
            missing = sorted(activities - set(sequence))
            problem = (
                f"execution {execution.execution_id!r} misses activities "
                f"{missing}; Algorithm 1 requires every activity in every "
                f"execution (use Algorithm 2 for optional activities)"
            )
            break
    if problem is not None:
        raise MiningError(problem)
