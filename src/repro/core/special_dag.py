"""Algorithm 1 (Special DAG) — Section 3 of the paper.

Assumes the process graph is acyclic and *every* activity appears exactly
once in each execution.  Under those assumptions the minimal conformal
graph is unique, and Algorithm 1 finds it:

1. collect every ordered pair ``(u, v)`` (``u`` terminates before ``v``
   starts) over all executions;
2. remove pairs present in both directions (2-cycles — such activities are
   independent);
3. transitively reduce the remaining DAG (Appendix Algorithm 4).

Complexity ``O(n²m)`` for ``n`` activities and ``m`` executions; the pair
collection dominates, exactly as in Theorem 4.
"""

from __future__ import annotations

from typing import Optional

from repro.core.followings import (
    execution_pair_sets,
    remove_two_cycles,
    union_pairs,
)
from repro.errors import CycleError, MiningError
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import transitive_reduction
from repro.logs.event_log import EventLog


def mine_special_dag(
    log: EventLog, strict: bool = True
) -> DiGraph:
    """Mine the minimal conformal graph of ``log`` with Algorithm 1.

    Parameters
    ----------
    log:
        Executions of one process.  Algorithm 1's preconditions — every
        activity in every execution, acyclic process — are checked when
        ``strict`` is true.
    strict:
        When true (default), raise :class:`MiningError` if some execution
        misses an activity or repeats one, instead of returning a graph
        whose minimality guarantee is void.

    Returns
    -------
    DiGraph
        The unique minimal conformal graph (Theorem 4).

    Examples
    --------
    Example 6 of the paper — log ``{ABCDE, ACDBE, ACBDE}``:

    >>> from repro.logs.event_log import EventLog
    >>> log = EventLog.from_sequences(["ABCDE", "ACDBE", "ACBDE"])
    >>> sorted(mine_special_dag(log).edges())
    [('A', 'B'), ('A', 'C'), ('B', 'E'), ('C', 'D'), ('D', 'E')]
    """
    log.require_non_empty()
    activities = log.activities()
    if strict:
        _check_preconditions(log, activities)

    pair_sets = execution_pair_sets(log)        # step 2
    edges = union_pairs(pair_sets)
    # Overlapping activities are independent (Section 2) — equivalent to
    # having seen the pair in both orders.
    for execution in log:
        for u, v in execution.overlapping_pairs():
            edges.discard((u, v))
            edges.discard((v, u))
    edges = remove_two_cycles(edges)            # step 3

    graph = DiGraph(nodes=sorted(activities), edges=edges)
    try:
        return transitive_reduction(graph)      # step 4
    except CycleError as exc:
        raise MiningError(
            "the followings graph is cyclic after removing 2-cycles; the "
            "log violates Algorithm 1's every-activity-every-execution "
            "assumption — use Algorithm 2 (mine_general_dag) instead"
        ) from exc


def _check_preconditions(log: EventLog, activities: frozenset) -> None:
    problem: Optional[str] = None
    for execution in log:
        sequence = execution.sequence
        if len(set(sequence)) != len(sequence):
            problem = (
                f"execution {execution.execution_id!r} repeats an "
                f"activity; Algorithm 1 requires exactly one instance each"
            )
            break
        if set(sequence) != set(activities):
            missing = sorted(activities - set(sequence))
            problem = (
                f"execution {execution.execution_id!r} misses activities "
                f"{missing}; Algorithm 1 requires every activity in every "
                f"execution (use Algorithm 2 for optional activities)"
            )
            break
    if problem is not None:
        raise MiningError(problem)
