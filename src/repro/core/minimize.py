"""Exact conformal-graph minimization (Section 4's slow alternative).

Describing Algorithm 2, the paper considers the direct approach first:
"we remove all edges that are not required for the execution of the
activities in the log.  An edge can be removed only if all the
executions are consistent with the remaining graph.  To derive a fast
algorithm, we use the following alternative …" — and switches to the
per-execution transitive-reduction marking, noting "we can no longer
guarantee that we have obtained a minimal conformal graph".

This module implements the road not taken: greedy exact minimization.
Starting from any conformal graph, edges are tentatively removed (in a
deterministic order) and the removal is kept only when the graph stays
conformal — dependency completeness intact and every execution still
consistent.  The result is a *minimal* conformal graph in the sense that
no single further edge can be dropped (set-inclusion minimality; the
truly minimum edge count is the paper's open problem).

Cost: each candidate removal re-checks all ``m`` executions, so the
whole pass is roughly ``O(|E| · m · n²)`` against the marking
heuristic's ``O(m · n³)`` one-shot — the ablation bench quantifies how
little the heuristic gives up for that speed.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.conformance import is_consistent
from repro.core.dependency import DependencyRelation, dependency_relation
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import transitive_closure_bitset
from repro.logs.event_log import EventLog


def minimize_conformal(
    graph: DiGraph,
    log: EventLog,
    relation: Optional[DependencyRelation] = None,
    source: Optional[str] = None,
    sink: Optional[str] = None,
) -> DiGraph:
    """Greedily remove edges of ``graph`` while it stays conformal.

    Parameters
    ----------
    graph:
        A conformal graph for ``log`` (e.g. Algorithm 2's output; any
        dependency-complete graph admitting the log works).
    log:
        The executions the graph must keep admitting.
    relation:
        Optional precomputed dependence relation.
    source, sink:
        Initiating/terminating activities; inferred from the log's first
        execution when omitted.

    Returns
    -------
    DiGraph
        A subgraph of ``graph`` from which no single edge can be removed
        without breaking conformance.

    Examples
    --------
    >>> from repro.logs.event_log import EventLog
    >>> from repro.core.general_dag import mine_general_dag
    >>> log = EventLog.from_sequences(["ABCF", "ACDF", "ADEF", "AECF"])
    >>> mined = mine_general_dag(log)
    >>> minimized = minimize_conformal(mined, log)
    >>> minimized.edge_count <= mined.edge_count
    True
    """
    log.require_non_empty()
    relation = relation or dependency_relation(log)
    if source is None:
        source = log[0].first_activity
    if sink is None:
        sink = log[0].last_activity

    current = graph.copy()
    # Deterministic order: try "longest shortcuts" first — edges whose
    # endpoints stay connected through other paths are the likeliest
    # removals, and removing them first leaves more freedom later.
    candidates = sorted(current.edges())
    for edge in candidates:
        current.remove_edge(*edge)
        if _still_conformal(current, log, relation, source, sink):
            continue
        current.add_edge(*edge)
    return current


def _still_conformal(
    graph: DiGraph,
    log: EventLog,
    relation: DependencyRelation,
    source: str,
    sink: str,
) -> bool:
    # Reachability only — the packed bitset skips materializing the
    # quadratic closure graph on every candidate-edge probe.
    closure = transitive_closure_bitset(graph)
    for prerequisite, dependent in relation.depends:
        if not closure.has_edge(prerequisite, dependent):
            return False
    return all(
        is_consistent(graph, execution, source, sink) is None
        for execution in log
    )


def minimization_gap(
    graph: DiGraph, log: EventLog
) -> Tuple[int, int, DiGraph]:
    """How many edges exact minimization saves over ``graph``.

    Returns ``(edges_before, edges_after, minimized_graph)`` — the
    quantity the ablation bench reports for the heuristic-vs-exact
    comparison.
    """
    minimized = minimize_conformal(graph, log)
    return graph.edge_count, minimized.edge_count, minimized
