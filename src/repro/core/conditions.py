"""Problem 2 — conditions mining (Section 7 of the paper).

Given a log *with recorded activity outputs* and a mined control-flow
graph, learn the Boolean function on each edge ``(u, v)``:

* training set: for each execution containing ``u``, the point
  ``(o(u), 1)`` if ``v`` also ran, else ``(o(u), 0)`` (Section 7's exact
  construction);
* learner: the from-scratch decision tree of :mod:`repro.classifier`;
* output: a rule set per edge plus a condition expression that can be
  attached back onto a :class:`~repro.model.process.ProcessModel`.

Edges whose source activities carry no outputs in the log (e.g. Flowmark
logs, which "do not log the input and output parameters") are reported as
unlearnable rather than failing — mirroring the paper's Section 8.2 note.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.classifier.dataset import Dataset, LabelledExample
from repro.classifier.rules import (
    Rule,
    format_rules,
    rules_to_condition,
    tree_to_rules,
)
from repro.classifier.tree import DecisionTree, TreeConfig
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog
from repro.model.conditions import (
    Always,
    Comparison,
    Condition,
    Never,
    ParamRef,
)
from repro.obs.recorder import NULL_RECORDER, Recorder

Edge = Tuple[str, str]

#: Histogram bounds for decision-tree depth (small integer depths).
_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)


def _rules_with_pairwise_terms(
    rules: List[Rule], arity: int, pairs: List[Tuple[int, int]]
) -> Condition:
    """Convert rules over augmented features back into the AST.

    A term on derived feature ``arity + k`` tests
    ``o[i] - o[j] <= t`` (with ``(i, j) = pairs[k]``), which renders as
    ``o[i] <= o[j] + t``.
    """

    def term_to_comparison(
        term: Tuple[int, str, float]
    ) -> Comparison:
        feature, op, threshold = term
        if feature < arity:
            return Comparison(feature, op, threshold)
        i, j = pairs[feature - arity]
        return Comparison(i, op, ParamRef(j, threshold))

    if not rules:
        return Never()
    if any(not rule for rule in rules):
        return Always()
    condition: Optional[Condition] = None
    for rule in rules:
        conjunct: Condition = term_to_comparison(rule[0])
        for term in rule[1:]:
            conjunct = conjunct & term_to_comparison(term)
        condition = conjunct if condition is None else condition | conjunct
    assert condition is not None
    return condition


@dataclass(frozen=True)
class MinedCondition:
    """The learned condition of one edge.

    Attributes
    ----------
    edge:
        The ``(source, target)`` edge.
    condition:
        The learned Boolean expression (:class:`Always` when the edge was
        always taken together, or unlearnable).
    rules:
        The decision tree's positive paths (empty for constant
        conditions).
    training_size:
        Number of training points.
    positive_fraction:
        Fraction of training points where the target also ran.
    training_accuracy:
        The tree's accuracy on its own training set (1.0 for constants).
    learnable:
        False when no outputs were recorded for the source activity, so
        nothing could be learned (the condition defaults to
        :class:`Always`).
    """

    edge: Edge
    condition: Condition
    rules: Tuple[Rule, ...]
    training_size: int
    positive_fraction: float
    training_accuracy: float
    learnable: bool

    def describe(self) -> str:
        """One-line human-readable summary."""
        source, target = self.edge
        if not self.learnable:
            status = "unlearnable (no outputs logged)"
        else:
            status = str(self.condition)
        return (
            f"{source} -> {target}: {status} "
            f"[n={self.training_size}, pos={self.positive_fraction:.0%}, "
            f"acc={self.training_accuracy:.0%}]"
        )

    def rules_text(self) -> str:
        """The rule set as readable text."""
        return format_rules(list(self.rules))


class ConditionsMiner:
    """Learn edge conditions for a mined graph from a log with outputs.

    Parameters
    ----------
    tree_config:
        Hyper-parameters for the per-edge decision trees.
    pairwise:
        When true, augment each training point with the pairwise
        differences ``o[i] - o[j]`` of its output parameters before
        fitting, and translate rules on those derived features back
        into parameter-to-parameter comparisons — which is exactly the
        shape of the paper's Example 1 condition
        ``(o(C)[1] > 0) and (o(C)[2] < o(C)[1])``.  Axis-aligned trees
        cannot represent ``o[i] < o[j]`` otherwise.
    """

    def __init__(
        self,
        tree_config: Optional[TreeConfig] = None,
        pairwise: bool = False,
    ) -> None:
        self.tree_config = tree_config or TreeConfig()
        self.pairwise = pairwise

    # ------------------------------------------------------------------
    # Training-set construction (Section 7, verbatim)
    # ------------------------------------------------------------------
    def training_set(self, log: EventLog, edge: Edge) -> Dataset:
        """Build the training set of ``edge`` from ``log``.

        For each execution in which the source ran *and recorded an
        output*, one point is produced, labelled by whether the target
        also ran.  Executions without a recorded output for the source are
        skipped (nothing to learn from).
        """
        source, target = edge
        examples: List[LabelledExample] = []
        for execution in log:
            if source not in execution.activities:
                continue
            output = execution.last_output_of(source)
            if output is None:
                continue
            examples.append(
                LabelledExample(
                    features=output,
                    label=target in execution.activities,
                )
            )
        return Dataset(examples)

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def mine_edge(
        self,
        log: EventLog,
        edge: Edge,
        recorder: Recorder = NULL_RECORDER,
    ) -> MinedCondition:
        """Learn the condition of one edge."""
        data = self.training_set(log, edge)
        if len(data) == 0:
            return MinedCondition(
                edge=edge,
                condition=Always(),
                rules=(),
                training_size=0,
                positive_fraction=0.0,
                training_accuracy=1.0,
                learnable=False,
            )
        if data.is_pure:
            # Constant condition; a tree would be a single leaf anyway.
            always_taken = data.majority_label
            condition = rules_to_condition([()] if always_taken else [])
            return MinedCondition(
                edge=edge,
                condition=condition,
                rules=((),) if always_taken else (),
                training_size=len(data),
                positive_fraction=data.positive_fraction(),
                training_accuracy=1.0,
                learnable=True,
            )
        arity = data.arity
        pairs: List[Tuple[int, int]] = []
        if self.pairwise and arity >= 2:
            pairs = [
                (i, j)
                for i in range(arity)
                for j in range(arity)
                if i != j
            ]
            data = Dataset(
                LabelledExample(
                    features=example.features
                    + tuple(
                        example.features[i] - example.features[j]
                        for i, j in pairs
                    ),
                    label=example.label,
                )
                for example in data
            )
        tree = DecisionTree.fit(data, self.tree_config)
        recorder.observe(
            "repro_conditions_tree_depth",
            tree.depth,
            bounds=_DEPTH_BUCKETS,
        )
        recorder.count(
            "repro_conditions_splits_total", max(tree.leaf_count - 1, 0)
        )
        rules = tree_to_rules(tree)
        if pairs:
            condition = _rules_with_pairwise_terms(rules, arity, pairs)
        else:
            condition = rules_to_condition(rules)
        return MinedCondition(
            edge=edge,
            condition=condition,
            rules=tuple(rules),
            training_size=len(data),
            positive_fraction=data.positive_fraction(),
            training_accuracy=tree.accuracy(data),
            learnable=True,
        )

    def mine(
        self,
        log: EventLog,
        graph: DiGraph,
        recorder: Recorder = NULL_RECORDER,
    ) -> Dict[Edge, MinedCondition]:
        """Learn conditions for every edge of ``graph``.

        Returns a mapping keyed by edge, in no particular order; use
        ``sorted(result)`` for stable reports.  With an enabled
        ``recorder``, per-edge tree depth/split metrics and the
        learnable/unlearnable totals are recorded under the
        ``repro_conditions_*`` names.
        """
        log.require_non_empty()
        mined = {
            edge: self.mine_edge(log, edge, recorder=recorder)
            for edge in graph.edges()
        }
        if recorder.enabled:
            recorder.count("repro_conditions_edges_total", len(mined))
            recorder.count(
                "repro_conditions_learnable_total",
                sum(1 for c in mined.values() if c.learnable),
            )
        return mined

    def conditions_for_model(
        self, log: EventLog, graph: DiGraph
    ) -> Dict[Edge, Condition]:
        """Learned conditions in the form ``ProcessModel`` accepts."""
        return {
            edge: mined.condition
            for edge, mined in self.mine(log, graph).items()
        }
