"""Extraneous executions — the paper's open problem, made measurable.

Section 4: "The difference in the two graphs is that they allow a
different set of extraneous executions (executions other than those
present in the log).  In general, one cannot construct a graph that
allows only those executions that are present in a log.  A valid goal
for a process graph discovery algorithm could be to find a conformal
graph that also minimizes extraneous executions."

This module provides the measurement side of that goal for small
graphs: :func:`admitted_executions` enumerates every execution a graph
admits under Definition 6 (valid activity subsets × linear extensions),
and :func:`extraneous_executions` subtracts the log's variants.  The
counts are exponential in general — enumeration is capped and intended
for worked-example-sized graphs, which is exactly where the paper poses
the problem (Figure 5).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional, Set, Tuple

from repro.core.conformance import is_consistent
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution

Sequence_ = Tuple[str, ...]


def admitted_executions(
    graph: DiGraph,
    source: str,
    sink: str,
    max_count: int = 100_000,
) -> List[Sequence_]:
    """Enumerate every execution ``graph`` admits (Definition 6).

    An admitted execution is an activity sequence, over some subset of
    the graph's vertices containing ``source`` and ``sink``, that
    Definition 6 accepts.  Enumeration is exhaustive over subsets and
    orderings and therefore exponential; the ``max_count`` guard raises
    :class:`ValueError` when the graph admits more.

    Returns sequences sorted (by length, then lexicographically).
    """
    vertices = [v for v in graph.nodes()]
    if source not in vertices or sink not in vertices:
        raise ValueError("source/sink must be vertices of the graph")
    interior = [v for v in vertices if v not in (source, sink)]

    admitted: Set[Sequence_] = set()
    for r in range(len(interior) + 1):
        for chosen in combinations(interior, r):
            subset = frozenset((source, sink, *chosen))
            induced = graph.subgraph(subset)
            for order in _linear_extensions(
                induced, first=source, last=sink
            ):
                execution = Execution.from_sequence(list(order))
                if is_consistent(graph, execution, source, sink) is None:
                    admitted.add(order)
                    if len(admitted) > max_count:
                        raise ValueError(
                            f"graph admits more than {max_count} "
                            f"executions; raise max_count or use a "
                            f"smaller graph"
                        )
    return sorted(admitted, key=lambda s: (len(s), s))


def extraneous_executions(
    graph: DiGraph,
    log: EventLog,
    source: Optional[str] = None,
    sink: Optional[str] = None,
    max_count: int = 100_000,
) -> List[Sequence_]:
    """Executions ``graph`` admits that the log never exhibited."""
    log.require_non_empty()
    if source is None:
        source = log[0].first_activity
    if sink is None:
        sink = log[0].last_activity
    admitted = admitted_executions(
        graph, source, sink, max_count=max_count
    )
    seen = {tuple(sequence) for sequence in log.sequences()}
    return [sequence for sequence in admitted if sequence not in seen]


def extraneous_ratio(
    graph: DiGraph,
    log: EventLog,
    source: Optional[str] = None,
    sink: Optional[str] = None,
    max_count: int = 100_000,
) -> float:
    """Fraction of the graph's admitted executions absent from the log.

    0.0 means the graph admits exactly the log's variants (the
    unreachable ideal the paper describes); values near 1.0 mean the
    graph is far more permissive than the evidence.
    """
    log.require_non_empty()
    if source is None:
        source = log[0].first_activity
    if sink is None:
        sink = log[0].last_activity
    admitted = admitted_executions(
        graph, source, sink, max_count=max_count
    )
    if not admitted:
        return 0.0
    seen = {tuple(sequence) for sequence in log.sequences()}
    extraneous = sum(1 for s in admitted if s not in seen)
    return extraneous / len(admitted)


def _linear_extensions(
    graph: DiGraph, first: str, last: str
) -> Iterator[Sequence_]:
    """Yield topological orders of ``graph`` starting at ``first`` and
    ending at ``last``; nothing when the constraints are unsatisfiable.
    """
    nodes = set(graph.nodes())
    if first not in nodes or last not in nodes:
        return
    in_degree = {v: graph.in_degree(v) for v in nodes}

    def backtrack(
        order: List[str], remaining: Set[str]
    ) -> Iterator[Sequence_]:
        if not remaining:
            if order[-1] == last:
                yield tuple(order)
            return
        ready = sorted(
            v
            for v in remaining
            if in_degree[v] == 0 and (v != last or len(remaining) == 1)
        )
        for choice in ready:
            remaining.discard(choice)
            order.append(choice)
            touched = []
            for child in graph.successors(choice):
                in_degree[child] -= 1
                touched.append(child)
            yield from backtrack(order, remaining)
            for child in touched:
                in_degree[child] += 1
            order.pop()
            remaining.add(choice)

    if in_degree[first] != 0:
        return
    remaining = set(nodes)
    remaining.discard(first)
    order = [first]
    for child in graph.successors(first):
        in_degree[child] -= 1
    yield from backtrack(order, remaining)


def count_admitted(
    graph: DiGraph, source: str, sink: str, max_count: int = 100_000
) -> int:
    """Number of executions the graph admits (enumeration-backed)."""
    return len(admitted_executions(graph, source, sink, max_count))
