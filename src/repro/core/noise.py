"""Noise-threshold theory (Section 6 of the paper).

Algorithm 2's noise handling keeps an ordered pair only when it occurs in
at least ``T`` executions.  Section 6 analyses the two failure modes:

* **false dependency from noise** — truly sequenced activities reported out
  of order at rate ε produce about ``ε·m`` spurious reverse pairs; if that
  count reaches ``T``, step 3 discards a true dependency as a 2-cycle.
  Bounded by ``C(m, T)·ε^T``.
* **false dependency from unlucky independence** — truly independent
  activities executed in the same order at least ``m − T`` times look
  dependent.  Bounded by ``C(m, m−T)·(1/2)^(m−T)``.

Setting the two bounds equal gives the paper's balance condition
``ε^T = (1/2)^(m−T)``, i.e. ``T = m·log 2 / (log 2 + log(1/ε))``.
:func:`optimal_threshold` solves it, and
:func:`threshold_error_probability` evaluates both (exact binomial-tail)
probabilities so the bench can sweep ``T``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NoiseThreshold:
    """A chosen threshold with its predicted failure probabilities.

    Attributes
    ----------
    threshold:
        The integer threshold ``T``.
    p_false_independence:
        Probability bound that noise produces >= T reverse pairs for some
        truly dependent pair (so the dependency is wrongly dropped).
    p_false_dependency:
        Probability bound that a truly independent pair shows one order in
        >= m - T executions (so a spurious edge survives).
    """

    threshold: int
    p_false_independence: float
    p_false_dependency: float

    @property
    def p_error(self) -> float:
        """The larger of the two failure probabilities (paper's max)."""
        return max(self.p_false_independence, self.p_false_dependency)


def binomial_tail(m: int, k: int, p: float) -> float:
    """P[X >= k] for X ~ Binomial(m, p), computed exactly.

    Used instead of the paper's looser ``C(m, T)·ε^T`` bound when
    evaluating a concrete (m, T); tests check the bound dominates it.
    """
    if k <= 0:
        return 1.0
    if k > m:
        return 0.0
    total = 0.0
    for i in range(k, m + 1):
        total += math.comb(m, i) * (p ** i) * ((1.0 - p) ** (m - i))
    return min(1.0, total)


def paper_upper_bound_false_independence(
    m: int, threshold: int, epsilon: float
) -> float:
    """The paper's bound ``C(m, T)·ε^T`` on >= T out-of-order reports."""
    if threshold > m:
        return 0.0
    return min(1.0, math.comb(m, threshold) * epsilon ** threshold)


def paper_upper_bound_false_dependency(m: int, threshold: int) -> float:
    """The paper's bound ``C(m, m−T)·(1/2)^(m−T)`` on a same-order streak."""
    k = m - threshold
    if k <= 0:
        return 1.0
    return min(1.0, math.comb(m, k) * 0.5 ** k)


def threshold_error_probability(
    m: int, threshold: int, epsilon: float
) -> NoiseThreshold:
    """Evaluate both failure probabilities for a concrete ``(m, T, ε)``.

    ``p_false_independence`` is the exact tail P[Binomial(m, ε) >= T]; the
    event is "at least T of the m executions report the pair out of order".
    ``p_false_dependency`` is P[Binomial(m, 1/2) >= m − T] doubled for the
    two possible orders, capped at 1 — "independent activities are executed
    in random order" (each order with probability 1/2).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if not 0.0 <= epsilon < 0.5:
        raise ValueError("epsilon must be in [0, 0.5) per Section 6")
    p_independence = binomial_tail(m, threshold, epsilon)
    p_dependency = min(1.0, 2.0 * binomial_tail(m, m - threshold, 0.5))
    return NoiseThreshold(
        threshold=threshold,
        p_false_independence=p_independence,
        p_false_dependency=p_dependency,
    )


def optimal_threshold(m: int, epsilon: float) -> int:
    """Solve the paper's balance condition for ``T``.

    From ``ε^T = (1/2)^(m−T)``::

        T·ln ε = (m − T)·ln(1/2)
        T = m·ln 2 / (ln 2 + ln(1/ε))

    The result is clamped to ``[1, m]`` and rounded to the nearest integer.
    ε = 0 means noise-free logs: any pair seen even once is trustworthy,
    so the threshold is 1.

    Examples
    --------
    >>> optimal_threshold(1000, 0.05)
    188
    >>> optimal_threshold(1000, 0.0)
    1
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if not 0.0 <= epsilon < 0.5:
        raise ValueError("epsilon must be in [0, 0.5) per Section 6")
    if epsilon == 0.0:
        return 1
    t = m * math.log(2.0) / (math.log(2.0) + math.log(1.0 / epsilon))
    return max(1, min(m, int(round(t))))


def expected_noise_pairs(m: int, epsilon: float) -> float:
    """Expected out-of-order reports for a sequenced pair: ``ε·m``.

    Section 6: "the expected number of out of order sequences for a given
    pair of activities is ε·m.  Clearly T must be larger than ε·m."
    """
    return epsilon * m
