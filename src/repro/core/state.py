"""Mergeable streaming mining state (out-of-core log mining).

The paper's Algorithms 1–3 are one-pass aggregations over executions:
everything steps 3–6 of :func:`~repro.core.general_dag.mine_general_dag`
consume — the vertex intern table, the deduplicated trace-variant table
with multiplicities, the packed follows-pair/overlap counters and the
per-vertex presence counts — is a *commutative monoid* over executions.
:class:`MiningState` materializes that monoid with three operations:

* :meth:`MiningState.update` — fold one execution in.  ``O(trace
  length²)`` worst case (``O(trace length)`` amortized for repeated
  variants), and **constant memory in the number of executions**: the
  state grows with distinct labels and distinct variants only, never
  with the raw log.
* :meth:`MiningState.merge` — fold another state in.  Associative and
  commutative up to label order (the canonical serialization erases
  even that), so a log can be sharded arbitrarily, mined per shard and
  merged in any order or grouping.  Vertex ids are relabelled across
  the two intern tables during the merge.
* :meth:`MiningState.finish` — run steps 3–6 of the packed pipeline
  over the accumulated variants, honoring the Section 6 noise
  threshold.  The result is *identical* to batch-mining the full log.

Unlike :class:`~repro.core.interning.InternTable` (immutable by
design), the state's internal label table grows as new labels stream
in.  Packed pair codes therefore use a private *capacity* modulus that
doubles when outgrown, repacking all stored codes — amortized linear,
exactly like a growing hash table.  :meth:`finish` and
:meth:`to_payload` remap those private codes onto a canonical
``InternTable`` (labels sorted by ``repr``), which is why two states
with equal content serialize byte-for-byte equal regardless of the
order anything was folded in.

The canonical serialization is also the incremental miner's
**checkpoint format v3** (:func:`save_state` / :func:`load_state`):
state files written by ``mine --stream --state-out`` are checkpoint
files, and ``merge-states`` and :meth:`IncrementalMiner.resume
<repro.core.incremental.IncrementalMiner.resume>` read v1/v2/v3 alike.
"""

from __future__ import annotations

import json
import pickle
from collections import Counter, OrderedDict
from itertools import combinations

try:
    # CPython's C helper behind Counter.update — the same loop minus
    # Counter.update's per-call Mapping isinstance dispatch, which is
    # measurable in the per-execution fold.
    from collections import _count_elements
except ImportError:  # pragma: no cover - non-CPython fallback
    def _count_elements(mapping, iterable):
        get = mapping.get
        for element in iterable:
            mapping[element] = get(element, 0) + 1
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.interning import InternTable, PackedVariant
from repro.core.kernels import KernelState, get_kernel
from repro.core.parallel import (
    RetryPolicy,
    process_fold,
    resolve_jobs,
    supervised_fold,
)
from repro.errors import CheckpointError
from repro.logs.execution import Execution
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.resilience.durable import PREVIOUS_SUFFIX, crc32c, durable_write
from repro.resilience.faults import maybe_fault

if TYPE_CHECKING:
    # Runtime imports would recreate the state<->general_dag cycle;
    # finish() imports these lazily inside its body instead.
    from repro.core.general_dag import MiningTrace
    from repro.graphs.digraph import DiGraph

Vertex = Hashable
Pair = Tuple[Vertex, Vertex]
PathOrStr = Union[str, Path]

#: Canonical ``(vertices, pairs, overlaps)`` key of one trace variant,
#: in the state's private packed-code space.
VariantKey = Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]

MODE_GENERAL = "general-dag"
MODE_CYCLIC = "cyclic"
_MODES = (MODE_GENERAL, MODE_CYCLIC)

CHECKPOINT_FORMAT = "repro-incremental-checkpoint"
#: Current checkpoint version.  v1 stored one JSON entry per execution
#: with label-level pair lists; v2 deduplicated into weighted trace
#: variants carrying an interning table; v3 is the canonical
#: :meth:`MiningState.to_payload` serialization (order-independent, so
#: shard states merge deterministically).  :func:`load_state` reads all
#: three.
CHECKPOINT_VERSION = 3

#: Default bound of the prepared-variant memo in :class:`MiningState`:
#: interned id tuple of a *sequential* trace -> packed variant triple,
#: LRU-evicted.  Unlike the instance-level trace cache (keyed on raw
#: timestamps), the memo keys on activity order alone, so it also hits
#: when repeated variants carry fresh timestamps — the common shape of
#: real ingest.  Entries are small (a tuple of ints plus three shared
#: frozensets), so the default bound costs a few MiB at worst.
DEFAULT_VARIANT_MEMO = 65536


def _vertex_to_json(vertex: Vertex) -> object:
    # Vertices are activity names (str) in general mode and labelled
    # instances ``(activity, occurrence)`` in cyclic mode.
    if isinstance(vertex, tuple):
        return [vertex[0], vertex[1]]
    return vertex


def _vertex_from_json(value: object) -> Vertex:
    if isinstance(value, list):
        if len(value) != 2:
            raise CheckpointError(f"bad labelled vertex {value!r}")
        return (str(value[0]), int(value[1]))
    return value


def _pairs_to_json(pairs: Iterable[Pair]) -> List[List[object]]:
    return sorted(
        [[_vertex_to_json(u), _vertex_to_json(v)] for u, v in pairs]
    )


def _pairs_from_json(values: Iterable[List[object]]) -> FrozenSet[Pair]:
    return frozenset(
        (_vertex_from_json(u), _vertex_from_json(v)) for u, v in values
    )


class MiningState:
    """Mergeable sufficient statistics of Algorithm 2/3 over a log.

    Parameters
    ----------
    labelled:
        ``False`` (default) folds the plain activity view consumed by
        Algorithm 2; ``True`` folds the instance-relabelled view of
        Algorithm 3 (vertices are ``(activity, occurrence)`` tuples) —
        :meth:`finish` then produces the instance graph, to be merged
        with :func:`~repro.core.cyclic.merge_instances`.
    memo_size:
        Bound of the prepared-variant memo (see
        :data:`DEFAULT_VARIANT_MEMO`); ``0`` disables it, restoring the
        pre-memo :meth:`update` byte for byte.  The memo is a pure
        accelerator: folded counts, merges and serializations are
        identical for every setting.

    Examples
    --------
    >>> from repro.logs.execution import Execution
    >>> state = MiningState()
    >>> for seq in ["ABCF", "ACDF"]:
    ...     state.update(Execution.from_sequence(seq))
    >>> state.execution_count, state.variant_count
    (2, 2)
    >>> sorted(state.finish().edges())[:2]
    [('A', 'B'), ('A', 'C')]
    """

    def __init__(
        self,
        labelled: bool = False,
        memo_size: int = DEFAULT_VARIANT_MEMO,
    ) -> None:
        if memo_size < 0:
            raise ValueError(f"bad memo size {memo_size!r}")
        self.labelled = bool(labelled)
        # Growable intern table: first-seen label order; codes are
        # packed ``u * _cap + v`` and repacked when the table outgrows
        # the capacity (amortized by doubling).
        self._labels: List[Vertex] = []
        self._index: Dict[Vertex, int] = {}
        self._cap = 0
        # Canonical variant table: triple -> multiplicity, plus the
        # incrementally maintained step-2 counters and presence counts.
        self._variants: Dict[VariantKey, int] = {}
        self._pair_counts: Counter = Counter()
        self._overlap_counts: Counter = Counter()
        self._presence: Counter = Counter()
        self._execution_count = 0
        # Trace-level accelerator: variant_key -> packed triple, so a
        # repeated trace skips the quadratic pair extraction.  Never
        # serialized and cleared before a worker ships its state.
        self._trace_cache: Dict[Tuple, VariantKey] = {}
        # Prepared-variant memo: interned id tuple of a *sequential*
        # trace -> packed triple.  A sequential trace's pair set is
        # fully determined by its id sequence (suffix-set trick in
        # _pack_execution), so the memo may hit across executions whose
        # timestamps — and hence variant keys — differ.  Non-sequential
        # traces always take the slow path: their pair sets depend on
        # the actual intervals.  Bounded LRU; like the trace cache it
        # is never serialized and dropped before IPC.
        self._prepared_memo: "OrderedDict[Tuple[int, ...], VariantKey]"
        self._prepared_memo = OrderedDict()
        self._memo_size = int(memo_size)
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0
        # Step-5 reduction memo reused across finish() calls while the
        # label set is unchanged (a DAG's transitive reduction depends
        # only on the induced edge set).
        self._memo_labels: Optional[Tuple[Vertex, ...]] = None
        self._memo: Dict[FrozenSet[int], FrozenSet[int]] = {}
        # Batched-kernel counterpart of the memo: reduced variant masks,
        # their kept-edge union and the prefix trie, valid while the
        # step-4 edge set is unchanged (KernelState resets itself).
        self._kernel_state = KernelState()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def execution_count(self) -> int:
        """Executions folded in (sum of variant multiplicities)."""
        return self._execution_count

    @property
    def variant_count(self) -> int:
        """Distinct trace variants accumulated so far."""
        return len(self._variants)

    @property
    def labels(self) -> Tuple[Vertex, ...]:
        """All vertex labels seen so far, in first-seen order."""
        return tuple(self._labels)

    def has_repetition(self) -> bool:
        """Whether any folded execution repeated an activity.

        Only meaningful for labelled states, where a second occurrence
        materializes as an ``(activity, 2)`` vertex; the streaming CLI
        uses this to resolve ``--algorithm auto``.
        """
        return self.labelled and any(
            occurrence > 1 for _, occurrence in self._labels
        )

    def pair_frequencies(self) -> Dict[Pair, int]:
        """Label-level follows-pair counters (Section 6 evidence)."""
        cap = self._cap
        labels = self._labels
        return {
            (labels[code // cap], labels[code % cap]): count
            for code, count in self._pair_counts.items()
        }

    def presence(self) -> Dict[Vertex, int]:
        """Per vertex, how many folded executions contain it."""
        labels = self._labels
        return {
            labels[vertex_id]: count
            for vertex_id, count in self._presence.items()
        }

    def __repr__(self) -> str:
        kind = "labelled" if self.labelled else "plain"
        return (
            f"MiningState({kind}, executions={self._execution_count}, "
            f"variants={len(self._variants)}, "
            f"labels={len(self._labels)})"
        )

    # ------------------------------------------------------------------
    # Growable interning
    # ------------------------------------------------------------------
    def _intern(self, label: Vertex) -> int:
        vertex_id = self._index.get(label)
        if vertex_id is None:
            vertex_id = len(self._labels)
            self._labels.append(label)
            self._index[label] = vertex_id
        return vertex_id

    def _ensure_capacity(self) -> None:
        if len(self._labels) <= self._cap:
            return
        self._repack(max(8, 2 * len(self._labels)))

    def _repack(self, new_cap: int) -> None:
        """Re-encode every stored pair code under a larger capacity."""
        old = self._cap
        self._cap = new_cap

        def remap(codes: FrozenSet[int]) -> FrozenSet[int]:
            return frozenset(
                (code // old) * new_cap + (code % old) for code in codes
            )

        if old and self._variants:
            self._variants = {
                (vertices, remap(pairs), remap(overlaps)): count
                for (vertices, pairs, overlaps), count
                in self._variants.items()
            }
            self._trace_cache = {
                key: (vertices, remap(pairs), remap(overlaps))
                for key, (vertices, pairs, overlaps)
                in self._trace_cache.items()
            }
            # Memo keys are vertex-id tuples (stable across repacks);
            # only the packed codes inside the values need remapping.
            # The comprehension preserves LRU order.
            self._prepared_memo = OrderedDict(
                (ids, (vertices, remap(pairs), remap(overlaps)))
                for ids, (vertices, pairs, overlaps)
                in self._prepared_memo.items()
            )
            self._pair_counts = Counter(
                {
                    (code // old) * new_cap + (code % old): count
                    for code, count in self._pair_counts.items()
                }
            )
            self._overlap_counts = Counter(
                {
                    (code // old) * new_cap + (code % old): count
                    for code, count in self._overlap_counts.items()
                }
            )

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def _fold(self, variant: VariantKey, count: int) -> None:
        vertices, pairs, overlaps = variant
        self._variants[variant] = self._variants.get(variant, 0) + count
        if count == 1:
            _count_elements(self._presence, vertices)
            _count_elements(self._pair_counts, pairs)
            if overlaps:
                _count_elements(self._overlap_counts, overlaps)
        else:
            self._presence.update(dict.fromkeys(vertices, count))
            self._pair_counts.update(dict.fromkeys(pairs, count))
            self._overlap_counts.update(dict.fromkeys(overlaps, count))
        self._execution_count += count

    def _pack_execution(self, execution: Execution) -> VariantKey:
        """Extract one execution's packed ``(vertices, pairs, overlaps)``.

        Mirrors :func:`repro.core.general_dag._pack_chunk`: sequential
        traces (the common case) produce packed codes directly from the
        interned id sequence via the suffix-set trick; interval-
        overlapping traces fall back to the cached label-level sets.
        """
        labelled = self.labelled
        sequence = (
            execution.labelled_sequence() if labelled
            else execution.sequence
        )
        intern = self._intern
        ids = [intern(label) for label in sequence]
        self._ensure_capacity()
        cap = self._cap
        vertices = frozenset(ids)
        if execution.is_sequential():
            if len(vertices) == len(ids):
                # No repeated activity (the overwhelming majority):
                # the forward pairs are exactly all (i, j), i < j, and
                # no self-pair can arise, so one pass over
                # ``combinations`` replaces the suffix-set walk.
                return (
                    vertices,
                    frozenset(
                        [a * cap + b for a, b in combinations(ids, 2)]
                    ),
                    frozenset(),
                )
            pairs: set = set()
            later: set = set()
            for vertex_id in reversed(ids):
                if later:
                    base = vertex_id * cap
                    pairs.update(base + other for other in later)
                later.add(vertex_id)
            if not labelled:
                # The suffix pass adds (a, a) when an activity repeats;
                # same-label pairs belong only to the relabelled view.
                pairs.difference_update(
                    vertex_id * cap + vertex_id for vertex_id in later
                )
            return (vertices, frozenset(pairs), frozenset())
        if labelled:
            ordered = execution.labelled_ordered_pair_set()
            overlapping = execution.labelled_overlapping_pair_set()
        else:
            ordered = execution.ordered_pair_set()
            overlapping = execution.overlapping_pair_set()
        index = self._index
        return (
            vertices,
            frozenset(index[u] * cap + index[v] for u, v in ordered),
            frozenset(
                index[u] * cap + index[v] for u, v in overlapping
            ),
        )

    def pack_sequence(
        self, sequence: Sequence[str]
    ) -> Optional[VariantKey]:
        """Pack a strictly-sequential, repeat-free activity sequence.

        The zero-Execution packing entry for the fused ingest path
        (:mod:`repro.logs.fastfold`): when the caller has already
        proven its bucket is a clean sequential trace, the variant
        packs straight from the activity sequence.  Returns ``None``
        for labelled states or sequences with a repeated activity —
        those need the relabelling / self-pair rules that
        :meth:`_pack_execution` applies — so the caller can fall back
        to building the execution.  The returned variant is identical
        to packing the equivalent execution.
        """
        if self.labelled:
            return None
        intern = self._intern
        ids = [intern(label) for label in sequence]
        self._ensure_capacity()
        cap = self._cap
        vertices = frozenset(ids)
        if len(vertices) != len(ids):
            return None
        return (
            vertices,
            frozenset([a * cap + b for a, b in combinations(ids, 2)]),
            frozenset(),
        )

    def update(self, execution: Execution) -> None:
        """Fold one execution into the state.

        Amortized ``O(trace length)`` for repeated trace variants, two
        ways: the prepared-variant memo turns a repeated *sequential*
        activity sequence into a counter bump regardless of timestamps,
        and the per-state trace cache skips re-extraction for exact
        instance-level repeats.  Either way the cost is independent of
        how many executions were folded before.
        """
        memo_size = self._memo_size
        ids: Optional[Tuple[int, ...]] = None
        if memo_size:
            index = self._index
            sequence = (
                execution.labelled_sequence() if self.labelled
                else execution.sequence
            )
            try:
                ids = tuple([index[label] for label in sequence])
            except KeyError:
                pass  # Unseen label: certainly not memoized.
            else:
                variant = self._prepared_memo.get(ids)
                if variant is not None and execution.is_sequential():
                    self.memo_hits += 1
                    self._prepared_memo.move_to_end(ids)
                    self._fold(variant, 1)
                    return
            self.memo_misses += 1
        key = execution.variant_key()
        variant = self._trace_cache.get(key)
        if variant is None:
            variant = self._pack_execution(execution)
            self._trace_cache[key] = variant
        self._fold(variant, 1)
        if memo_size and execution.is_sequential():
            if ids is None:
                # The slow path interned the new labels; the id tuple
                # is now computable (and stable — _repack changes pair
                # codes, never vertex ids).
                index = self._index
                ids = tuple(
                    index[label]
                    for label in (
                        execution.labelled_sequence() if self.labelled
                        else execution.sequence
                    )
                )
            memo = self._prepared_memo
            memo[ids] = variant
            if len(memo) > memo_size:
                memo.popitem(last=False)
                self.memo_evictions += 1

    def add_variant(
        self,
        vertices: Iterable[Vertex],
        pairs: Iterable[Pair],
        overlaps: Iterable[Pair] = (),
        count: int = 1,
    ) -> None:
        """Fold one label-level trace variant in, ``count`` times.

        The label table covers pair and overlap endpoints as well as
        the vertex set, mirroring
        :func:`~repro.core.interning.intern_variants`.  This is the
        resume path for v1/v2 checkpoints and the constructor used by
        tests that build states directly from prepared sets.
        """
        if count < 1:
            raise ValueError(f"bad variant multiplicity {count!r}")
        intern = self._intern
        vertex_ids = [intern(label) for label in vertices]
        pair_ends = [(intern(u), intern(v)) for u, v in pairs]
        overlap_ends = [(intern(u), intern(v)) for u, v in overlaps]
        self._ensure_capacity()
        cap = self._cap
        self._fold(
            (
                frozenset(vertex_ids),
                frozenset(u * cap + v for u, v in pair_ends),
                frozenset(u * cap + v for u, v in overlap_ends),
            ),
            count,
        )

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "MiningState") -> "MiningState":
        """Fold another state into this one (in place); returns ``self``.

        Associative and order-deterministic: the other state's vertex
        ids are relabelled through this state's intern table, and the
        variant table is a multiset union, so any merge tree over the
        same shards yields a state with identical content (and an
        identical canonical serialization).
        """
        if not isinstance(other, MiningState):
            raise TypeError(
                f"can only merge MiningState, got {type(other).__name__}"
            )
        if self.labelled != other.labelled:
            raise ValueError(
                "cannot merge labelled (cyclic) and plain (general-dag) "
                "mining states"
            )
        if other is self:
            other = other.copy()
        intern = self._intern
        mapping = [intern(label) for label in other._labels]
        self._ensure_capacity()
        cap = self._cap
        other_cap = other._cap or 1

        def remap_code(code: int) -> int:
            return (
                mapping[code // other_cap] * cap
                + mapping[code % other_cap]
            )

        def remap(codes: FrozenSet[int]) -> FrozenSet[int]:
            return frozenset(remap_code(code) for code in codes)

        variants = self._variants
        for (vertices, pairs, overlaps), count in other._variants.items():
            key = (
                frozenset(mapping[v] for v in vertices),
                remap(pairs),
                remap(overlaps),
            )
            variants[key] = variants.get(key, 0) + count
        self._presence.update(
            {
                mapping[vertex_id]: count
                for vertex_id, count in other._presence.items()
            }
        )
        self._pair_counts.update(
            {
                remap_code(code): count
                for code, count in other._pair_counts.items()
            }
        )
        self._overlap_counts.update(
            {
                remap_code(code): count
                for code, count in other._overlap_counts.items()
            }
        )
        self._execution_count += other._execution_count
        # Memo traffic is observability, not content: roll the other
        # state's counters up so parallel folds report like serial ones.
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses
        self.memo_evictions += other.memo_evictions
        return self

    def to_plain(self) -> "MiningState":
        """Project a repetition-free labelled state onto the plain view.

        When no folded execution repeated an activity, every vertex is
        ``(activity, 1)`` and the instance-relabelled statistics are
        isomorphic to the plain Algorithm 2 statistics; dropping the
        occurrence index yields exactly the state a plain fold of the
        same log would have produced.  The streaming CLI uses this to
        resolve ``--algorithm auto`` after a single labelled pass.

        Raises ``ValueError`` on a state with repeated activities (mine
        those as cyclic) and returns a copy unchanged for states that
        are already plain.
        """
        if not self.labelled:
            return self.copy()
        if self.has_repetition():
            raise ValueError(
                "cannot project a state with repeated activities onto "
                "the plain view; finish it as a cyclic instance graph "
                "instead"
            )
        plain = MiningState(labelled=False)
        cap = self._cap or 1
        labels = [activity for activity, _ in self._labels]
        for (vertices, pairs, overlaps), count in self._variants.items():
            plain.add_variant(
                vertices=[labels[v] for v in vertices],
                pairs=[
                    (labels[c // cap], labels[c % cap]) for c in pairs
                ],
                overlaps=[
                    (labels[c // cap], labels[c % cap]) for c in overlaps
                ],
                count=count,
            )
        return plain

    def copy(self) -> "MiningState":
        """An independent copy (shared immutable frozensets)."""
        clone = MiningState(
            labelled=self.labelled, memo_size=self._memo_size
        )
        clone._labels = list(self._labels)
        clone._index = dict(self._index)
        clone._cap = self._cap
        clone._variants = dict(self._variants)
        clone._pair_counts = Counter(self._pair_counts)
        clone._overlap_counts = Counter(self._overlap_counts)
        clone._presence = Counter(self._presence)
        clone._execution_count = self._execution_count
        clone._trace_cache = dict(self._trace_cache)
        clone._prepared_memo = OrderedDict(self._prepared_memo)
        clone.memo_hits = self.memo_hits
        clone.memo_misses = self.memo_misses
        clone.memo_evictions = self.memo_evictions
        return clone

    # ------------------------------------------------------------------
    # Finish (steps 3–6)
    # ------------------------------------------------------------------
    def packed(self) -> Tuple[InternTable, List[PackedVariant]]:
        """The accumulated variants in the batch pipeline's packed form.

        Labels are canonicalized into an immutable
        :class:`~repro.core.interning.InternTable` (sorted by ``repr``)
        and every private capacity-packed code is remapped onto the
        table's ``u_id * n + v_id`` encoding, so the result plugs
        straight into ``_mine_packed`` — and is content-identical for
        any fold/merge order that produced the same state.
        """
        table = InternTable(self._labels)
        id_map = [table.id_of(label) for label in self._labels]
        n = max(len(table), 1)
        cap = self._cap

        def remap(codes: FrozenSet[int]) -> FrozenSet[int]:
            return frozenset(
                id_map[code // cap] * n + id_map[code % cap]
                for code in codes
            )

        variants = [
            PackedVariant(
                vertices=frozenset(id_map[v] for v in vertices),
                pairs=remap(pairs),
                overlaps=remap(overlaps),
                multiplicity=count,
            )
            for (vertices, pairs, overlaps), count
            in self._variants.items()
        ]
        return table, variants

    def _reduction_memo_for(
        self, table: InternTable
    ) -> Dict[FrozenSet[int], FrozenSet[int]]:
        # The memo keys are induced edge sets packed against the
        # canonical table, so any label-set change invalidates it.
        if self._memo_labels != table.labels:
            self._memo_labels = table.labels
            self._memo = {}
        return self._memo

    def finish(
        self,
        threshold: int = 0,
        trace: Optional["MiningTrace"] = None,
        jobs: Optional[int] = None,
        skip_scc_removal: bool = False,
        skip_execution_marking: bool = False,
        kernel: Optional[str] = None,
    ) -> "DiGraph":
        """Run steps 3–6 over the accumulated variants.

        Identical to :func:`~repro.core.general_dag.mine_general_dag`
        (or, for labelled states, to the instance graph of
        :func:`~repro.core.cyclic.mine_cyclic`) over the full log the
        state was folded from — the differential test suite asserts
        this for arbitrary shard splits and merge orders.

        Raises :class:`~repro.errors.EmptyLogError` when nothing was
        folded in yet.  Repeated calls reuse a persistent step-5
        reduction memo while the label set is unchanged — and, under a
        mask-capable ``kernel`` (``None`` defers to ``REPRO_KERNEL``,
        defaulting to ``bitset``), a persistent
        :class:`~repro.core.kernels.KernelState` of already-reduced
        variant masks — so re-materializing after a few new executions
        is cheap.
        """
        # Local import: general_dag imports interning/parallel like this
        # module does, and the incremental miner sits on top of both.
        from repro.core.general_dag import MiningTrace, _mine_packed

        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        trace = trace if trace is not None else MiningTrace()
        with trace.stage("intern"):
            table, variants = self.packed()
        return _mine_packed(
            table,
            variants,
            threshold=threshold,
            trace=trace,
            skip_scc_removal=skip_scc_removal,
            skip_execution_marking=skip_execution_marking,
            jobs=jobs,
            reduction_memo=self._reduction_memo_for(table),
            kernel=get_kernel(kernel),
            kernel_state=self._kernel_state,
        )

    # ------------------------------------------------------------------
    # Canonical serialization (checkpoint v3)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """The canonical JSON-ready form of the state.

        Labels are sorted by ``repr``, codes repacked to ``n =
        len(labels)``, and variants sorted by their serialized triple —
        so equal-content states (any fold/merge order) serialize
        identically, which makes payload equality a strong merge
        associativity/commutativity check.
        """
        table = InternTable(self._labels)
        id_map = [table.id_of(label) for label in self._labels]
        n = max(len(table), 1)
        cap = self._cap

        def remap(codes: FrozenSet[int]) -> List[int]:
            return sorted(
                id_map[code // cap] * n + id_map[code % cap]
                for code in codes
            )

        entries = [
            {
                "vertices": sorted(id_map[v] for v in vertices),
                "pairs": remap(pairs),
                "overlaps": remap(overlaps),
                "count": count,
            }
            for (vertices, pairs, overlaps), count
            in self._variants.items()
        ]
        entries.sort(
            key=lambda entry: (
                entry["vertices"], entry["pairs"], entry["overlaps"]
            )
        )
        return {
            "labelled": self.labelled,
            "labels": [_vertex_to_json(label) for label in table.labels],
            "variants": entries,
            "execution_count": self._execution_count,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MiningState":
        """Rebuild a state from :meth:`to_payload` output.

        Raises ``ValueError``/``KeyError``/``TypeError`` on malformed
        payloads; :func:`load_state` wraps those into
        :class:`~repro.errors.CheckpointError`.
        """
        if not isinstance(payload, dict):
            raise ValueError("state payload must be a JSON object")
        state = cls(labelled=bool(payload["labelled"]))
        labels = [_vertex_from_json(value) for value in payload["labels"]]
        n = len(labels)
        for entry in payload["variants"]:
            state.add_variant(
                vertices=[labels[int(v)] for v in entry["vertices"]],
                pairs=[
                    (labels[int(c) // n], labels[int(c) % n])
                    for c in entry["pairs"]
                ],
                overlaps=[
                    (labels[int(c) // n], labels[int(c) % n])
                    for c in entry["overlaps"]
                ],
                count=int(entry["count"]),
            )
        declared = int(payload["execution_count"])
        if declared != state._execution_count:
            raise ValueError(
                f"execution_count {declared} does not match the sum of "
                f"variant multiplicities {state._execution_count}"
            )
        return state


# ----------------------------------------------------------------------
# State files (= incremental checkpoints, format v3)
# ----------------------------------------------------------------------
def _integrity_body(payload: dict) -> bytes:
    """The canonical bytes the integrity envelope checksums.

    Everything in the envelope *except* the ``integrity`` field itself,
    dumped with sorted keys and compact separators, so the digest is
    independent of JSON key order on disk.
    """
    body = {
        key: value for key, value in payload.items() if key != "integrity"
    }
    return json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def state_envelope(
    state: MiningState,
    mode: Optional[str] = None,
    threshold: int = 0,
    last_edges: Optional[frozenset] = None,
    stable_since: int = 0,
    journal_seq: Optional[int] = None,
) -> str:
    """Serialize ``state`` as the canonical v3 checkpoint envelope.

    This is the exact text :func:`save_state` writes — factored out so
    callers that ship the envelope over a wire (the service's
    ``GET /v1/{process}/state``) produce bytes identical to the CLI's
    ``--state-out`` file for the same state.

    ``mode`` defaults to ``"cyclic"`` for labelled states and
    ``"general-dag"`` otherwise; an explicit mode must agree with the
    state's ``labelled`` flag.  ``last_edges``/``stable_since`` carry
    the incremental miner's stability bookkeeping (zero/absent for
    plain shard states).  ``journal_seq`` — only present for durable
    sessions — records the write-ahead journal sequence number this
    state covers, so recovery knows where journal replay starts.

    The envelope carries an ``integrity`` field (CRC32C + length over
    the canonical body), verified by :func:`load_state`.
    """
    if mode is None:
        mode = MODE_CYCLIC if state.labelled else MODE_GENERAL
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    if (mode == MODE_CYCLIC) != state.labelled:
        raise ValueError(
            f"mode {mode!r} does not match a "
            f"{'labelled' if state.labelled else 'plain'} mining state"
        )
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "mode": mode,
        "threshold": int(threshold),
        "state": state.to_payload(),
        "last_edges": (
            _pairs_to_json(last_edges) if last_edges is not None else None
        ),
        "stable_since": int(stable_since),
    }
    if journal_seq is not None:
        payload["journal_seq"] = int(journal_seq)
    body = _integrity_body(payload)
    payload["integrity"] = {
        "algorithm": "crc32c",
        "crc32c": f"{crc32c(body):08x}",
        "length": len(body),
    }
    return json.dumps(payload, separators=(",", ":"))


def save_state(
    state: MiningState,
    path: PathOrStr,
    mode: Optional[str] = None,
    threshold: int = 0,
    last_edges: Optional[frozenset] = None,
    stable_since: int = 0,
    journal_seq: Optional[int] = None,
) -> None:
    """Write ``state`` to ``path`` as a version-3 checkpoint, durably.

    The envelope text comes from :func:`state_envelope`; the file goes
    through :func:`~repro.resilience.durable.durable_write` (temp
    sibling, fsync, atomic replace, directory fsync) so a crash
    mid-write never leaves a torn or unsynced checkpoint behind.
    """
    durable_write(
        Path(path),
        state_envelope(
            state,
            mode=mode,
            threshold=threshold,
            last_edges=last_edges,
            stable_since=stable_since,
            journal_seq=journal_seq,
        ),
    )


def _load_v1_state(state: MiningState, entries: Iterable[dict]) -> None:
    """Fold v1's one-entry-per-execution label-level payload."""
    for entry in entries:
        state.add_variant(
            vertices=[_vertex_from_json(v) for v in entry["vertices"]],
            pairs=[
                (_vertex_from_json(u), _vertex_from_json(v))
                for u, v in entry["pairs"]
            ],
            overlaps=[
                (_vertex_from_json(u), _vertex_from_json(v))
                for u, v in entry["overlaps"]
            ],
            count=1,
        )


def _load_v2_state(
    state: MiningState, labels: Iterable[object], entries: Iterable[dict]
) -> None:
    """Fold v2's interning table + packed weighted variants."""
    table = [_vertex_from_json(label) for label in labels]
    n = len(table)
    for entry in entries:
        state.add_variant(
            vertices=[table[int(v)] for v in entry["vertices"]],
            pairs=[
                (table[int(c) // n], table[int(c) % n])
                for c in entry["pairs"]
            ],
            overlaps=[
                (table[int(c) // n], table[int(c) % n])
                for c in entry["overlaps"]
            ],
            count=int(entry["count"]),
        )


def load_state(path: PathOrStr) -> Tuple[MiningState, dict]:
    """Read a state/checkpoint file (any version) back into a state.

    Returns ``(state, meta)`` where ``meta`` carries the envelope
    fields: ``version``, ``mode``, ``threshold``, ``last_edges``
    (label-level frozenset or ``None``) and ``stable_since``.

    Raises
    ------
    CheckpointError
        When the file is unreadable, not a checkpoint, corrupt (a
        present ``integrity`` envelope fails its CRC32C/length check),
        or has an unsupported version.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path!s}: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get(
        "format"
    ) != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path!s} is not an incremental-miner checkpoint"
        )
    integrity = payload.get("integrity")
    if integrity is not None:
        # Pre-hardening checkpoints have no envelope; when one is
        # present it must verify.
        try:
            declared_crc = str(integrity["crc32c"])
            declared_length = int(integrity["length"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint {path!s}: bad integrity field"
            ) from exc
        body = _integrity_body(payload)
        if (
            len(body) != declared_length
            or f"{crc32c(body):08x}" != declared_crc
        ):
            raise CheckpointError(
                f"corrupt checkpoint {path!s}: integrity check failed "
                f"(crc32c {crc32c(body):08x} != {declared_crc} or "
                f"length {len(body)} != {declared_length})"
            )
    version = payload.get("version")
    if version not in (1, 2, 3):
        raise CheckpointError(
            f"unsupported checkpoint version {version!r}"
        )
    try:
        mode = payload["mode"]
        if mode not in _MODES:
            raise ValueError(f"bad mode {mode!r}")
        labelled = mode == MODE_CYCLIC
        if version == 3:
            state = MiningState.from_payload(payload["state"])
            if state.labelled != labelled:
                raise ValueError(
                    f"state labelled={state.labelled} does not match "
                    f"mode {mode!r}"
                )
        elif version == 2:
            state = MiningState(labelled=labelled)
            _load_v2_state(state, payload["labels"], payload["variants"])
            # v2 stored the execution count explicitly; trust it like
            # the original reader did.
            state._execution_count = int(payload["execution_count"])
        else:
            state = MiningState(labelled=labelled)
            _load_v1_state(state, payload["executions"])
        last_edges = payload["last_edges"]
        meta = {
            "version": version,
            "mode": mode,
            "threshold": int(payload["threshold"]),
            "last_edges": (
                _pairs_from_json(last_edges)
                if last_edges is not None
                else None
            ),
            "stable_since": int(payload["stable_since"]),
            "journal_seq": int(payload.get("journal_seq", 0)),
            "verified": integrity is not None,
        }
    except (
        KeyError,
        TypeError,
        ValueError,
        IndexError,
        ZeroDivisionError,
    ) as exc:
        raise CheckpointError(
            f"corrupt checkpoint {path!s}: {exc}"
        ) from exc
    return state, meta


def load_state_with_fallback(
    path: PathOrStr,
    recorder: Recorder = NULL_RECORDER,
) -> Tuple[MiningState, dict, bool]:
    """Load ``path``, falling back to ``path.prev`` when it is corrupt.

    The durable session demotes each checkpoint to a ``.prev`` sibling
    before writing its successor, so a checkpoint that fails its
    integrity check (or is missing mid-rotation) still has one good
    predecessor on disk.  Returns ``(state, meta, used_fallback)`` and
    bumps ``repro_checkpoint_fallback_total`` when the fallback fired;
    re-raises the primary :class:`~repro.errors.CheckpointError` when
    the fallback is absent or also corrupt.
    """
    path = Path(path)
    try:
        state, meta = load_state(path)
        return state, meta, False
    except CheckpointError as primary:
        fallback = path.with_name(path.name + PREVIOUS_SUFFIX)
        if not fallback.exists():
            raise
        try:
            state, meta = load_state(fallback)
        except CheckpointError:
            raise primary from None
        recorder.count("repro_checkpoint_fallback_total")
        return state, meta, True


# ----------------------------------------------------------------------
# Streaming fold (serial or one compact state per worker chunk)
# ----------------------------------------------------------------------
def _fold_chunk(
    args: Tuple[bool, List[Execution], bool],
) -> Tuple[MiningState, int]:
    """Worker: fold a chunk of executions into one partial state.

    Returns ``(partial_state, per_item_bytes)`` where the second field
    — measured only when the chunk's ``measure`` flag is set — is the
    pickled size of the per-execution packed triples the pre-streaming
    ``process_map`` path would have shipped back instead.  Comparing it
    against ``repro_parallel_ipc_bytes_total{payload="result"}`` (the
    compact state actually sent) gives the IPC bytes saved.
    """
    labelled, executions, measure = args
    # Fault-injection choke point: worker-crash / worker-hang faults
    # fire here to drive the supervisor's recovery paths.
    maybe_fault("fold.chunk")
    # Measurement mode reproduces the per-item triples via the trace
    # cache, which the prepared-variant memo fast path bypasses — so
    # disable the memo while measuring (the folded content is the same
    # either way).
    partial = MiningState(
        labelled=labelled,
        memo_size=0 if measure else DEFAULT_VARIANT_MEMO,
    )
    per_item: Optional[List] = [] if measure else None
    for execution in executions:
        partial.update(execution)
        if per_item is not None:
            per_item.append(
                partial._trace_cache[execution.variant_key()]
            )
    per_item_bytes = (
        len(pickle.dumps(per_item)) if per_item is not None else 0
    )
    # The trace cache and prepared-variant memo are local accelerators
    # only; dropping them keeps the IPC payload at one compact state
    # per chunk.
    partial._trace_cache.clear()
    partial._prepared_memo.clear()
    return partial, per_item_bytes


def fold_executions(
    executions: Iterable[Execution],
    labelled: bool = False,
    jobs: Optional[int] = None,
    chunk_size: int = 1024,
    recorder: Recorder = NULL_RECORDER,
    state: Optional[MiningState] = None,
    retry: Optional[RetryPolicy] = None,
    on_poisoned: Optional[Callable] = None,
) -> MiningState:
    """Fold an execution *stream* into a :class:`MiningState`.

    Memory stays bounded by the state size plus (with ``jobs > 1``) a
    bounded window of in-flight chunks: the input is consumed lazily,
    never materialized as a list or :class:`~repro.logs.event_log.
    EventLog`.  With ``jobs > 1`` worker processes fold ``chunk_size``
    executions each into a partial state and ship *one compact state
    per chunk* back (see :func:`repro.core.parallel.process_fold`),
    which the parent merges in submission order — deterministic and
    identical to the serial fold.

    Passing a :class:`~repro.core.parallel.RetryPolicy` as ``retry``
    upgrades the parallel path to :func:`~repro.core.parallel.
    supervised_fold`: hung or crashed workers are detected, the chunk
    is retried under the policy's backoff budget, and chunks that
    exhaust it are skipped (the mine continues degraded) after being
    reported through ``on_poisoned(executions, reason)``.

    Folds into ``state`` when given (e.g. to continue a resumed one),
    else into a fresh state; returns the folded state either way.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if state is None:
        state = MiningState(labelled=labelled)
    elif state.labelled != labelled:
        raise ValueError(
            "state.labelled does not match the requested labelled flag"
        )
    jobs = resolve_jobs(jobs)
    before = state.execution_count
    memo_before = (
        state.memo_hits, state.memo_misses, state.memo_evictions
    )
    if jobs <= 1:
        for execution in executions:
            state.update(execution)
    else:
        measure = recorder.enabled

        def chunks() -> Iterator[Tuple[bool, List[Execution], bool]]:
            buffer: List[Execution] = []
            for execution in executions:
                buffer.append(execution)
                if len(buffer) >= chunk_size:
                    yield (labelled, buffer, measure)
                    buffer = []
            if buffer:
                yield (labelled, buffer, measure)

        def fold(result: Tuple[MiningState, int]) -> None:
            partial, per_item_bytes = result
            if per_item_bytes:
                recorder.count(
                    "repro_parallel_ipc_bytes_total",
                    per_item_bytes,
                    labels={
                        "stage": "stream_fold",
                        "payload": "per_item_equivalent",
                    },
                )
            state.merge(partial)

        if retry is not None:

            def report(
                chunk_args: Tuple[bool, List[Execution], bool],
                reason: str,
            ) -> None:
                if on_poisoned is not None:
                    # Unwrap the worker tuple back to the executions.
                    on_poisoned(chunk_args[1], reason)

            supervised_fold(
                _fold_chunk,
                chunks(),
                jobs,
                fold,
                policy=retry,
                recorder=recorder,
                stage="stream_fold",
                on_poisoned=report,
            )
        else:
            process_fold(
                _fold_chunk,
                chunks(),
                jobs,
                fold,
                recorder=recorder,
                stage="stream_fold",
            )
    recorder.count(
        "repro_stream_executions_total",
        state.execution_count - before,
    )
    # merge() rolls worker-partial memo counters up into the parent
    # state, so the deltas cover serial and parallel folds alike.
    for event, start_value, end_value in (
        ("hit", memo_before[0], state.memo_hits),
        ("miss", memo_before[1], state.memo_misses),
        ("evict", memo_before[2], state.memo_evictions),
    ):
        if end_value > start_value:
            recorder.count(
                "repro_ingest_variant_memo_total",
                end_value - start_value,
                labels={"event": event},
            )
    return state
