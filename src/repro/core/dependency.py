"""Dependence between activities (Definitions 4 and 5).

``B`` *depends on* ``A`` when ``B`` follows ``A`` but ``A`` does not follow
``B``; activities following each other (or neither) are *independent*.

One subtlety the paper's prose leaves open: a *direct* following that is
part of a mutual-following cycle (a strongly connected component of the
followings graph — e.g. C, D, E in Example 7) marks its endpoints
independent, and the paper's Algorithm 2 removes those edges *before* any
transitive reasoning.  Definition 3 read literally would still transmit
"D follows B via C" through the cancelled C-D following, contradicting
Theorem 5's conformance claim.  We therefore adopt the algorithm's
semantics: dependence is reachability in the direct-followings graph after
2-cycle and intra-component edge removal.  That graph is acyclic, so
dependence is a strict partial order.

:func:`dependency_relation` is the *reference* implementation used by tests
and conformance checks; the production miners (Algorithms 1–3) compute the
same structure far faster from ordered pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.core.followings import FollowRelation, follow_relation
from repro.errors import CycleError
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import remove_intra_component_edges
from repro.graphs.transitive import (
    transitive_closure_bitset,
    transitive_reduction,
)
from repro.logs.event_log import EventLog

Pair = Tuple[str, str]

INDEPENDENT = "independent"
DEPENDS = "depends"           # second depends on first
DEPENDS_REVERSED = "depends-reversed"  # first depends on second


@dataclass(frozen=True)
class DependencyRelation:
    """The dependence structure of a log (Definition 4).

    Attributes
    ----------
    follow:
        The underlying :class:`~repro.core.followings.FollowRelation`.
    depends:
        Pairs ``(a, b)`` meaning "``b`` depends on ``a``" — i.e. every
        conformal graph must contain a path from ``a`` to ``b``.
    """

    follow: FollowRelation
    depends: FrozenSet[Pair]

    @property
    def activities(self) -> FrozenSet[str]:
        """All activities of the log."""
        return self.follow.activities

    def depends_on(self, dependent: str, prerequisite: str) -> bool:
        """Whether ``dependent`` depends on ``prerequisite``."""
        return (prerequisite, dependent) in self.depends

    def independent(self, first: str, second: str) -> bool:
        """Whether the two activities are independent (Definition 4)."""
        return (
            (first, second) not in self.depends
            and (second, first) not in self.depends
            and first != second
        )

    def classify(self, first: str, second: str) -> str:
        """Classify an activity pair.

        Returns :data:`DEPENDS` when ``second`` depends on ``first``,
        :data:`DEPENDS_REVERSED` when ``first`` depends on ``second``, and
        :data:`INDEPENDENT` otherwise.
        """
        if (first, second) in self.depends:
            return DEPENDS
        if (second, first) in self.depends:
            return DEPENDS_REVERSED
        return INDEPENDENT

    def full_graph(self) -> DiGraph:
        """The maximal dependency graph: one edge per dependence pair.

        By Definition 5 any graph with the same transitive closure also
        represents the dependencies; see :meth:`minimal_graph`.
        """
        return DiGraph(nodes=sorted(self.activities), edges=self.depends)

    def minimal_graph(self) -> DiGraph:
        """The minimal dependency graph — the transitive reduction of
        :meth:`full_graph` (unique because dependence is a strict partial
        order, hence a DAG)."""
        try:
            return transitive_reduction(self.full_graph())
        except CycleError as exc:  # pragma: no cover - defensive
            raise AssertionError(
                "dependence relation contained a cycle; this contradicts "
                "Definition 4 and indicates a bug"
            ) from exc


def dependency_relation(log: EventLog) -> DependencyRelation:
    """Compute the :class:`DependencyRelation` of ``log``.

    Examples
    --------
    Example 3 of the paper:

    >>> from repro.logs.event_log import EventLog
    >>> log = EventLog.from_sequences(["ABCE", "ACDE", "ADBE"])
    >>> relation = dependency_relation(log)
    >>> relation.depends_on("B", "A")     # B depends on A
    True
    >>> relation.independent("B", "D")    # B and D are independent
    True

    Adding ``ADCE`` makes ``B`` depend on ``D`` (C and D become
    independent, severing the D-follows-B path through C):

    >>> log.append(
    ...     __import__("repro.logs.execution", fromlist=["Execution"])
    ...     .Execution.from_sequence("ADCE", execution_id="exec-extra")
    ... )
    >>> relation = dependency_relation(log)
    >>> relation.depends_on("B", "D")
    True
    """
    follow = follow_relation(log)
    # Direct followings, minus 2-cycles, minus independence cycles — the
    # same pruning as Algorithm 2 steps 3-4 (see the module docstring).
    direct = {
        (a, b) for a, b in follow.direct if (b, a) not in follow.direct
    }
    graph = DiGraph(nodes=sorted(follow.activities), edges=direct)
    remove_intra_component_edges(graph)
    closure = transitive_closure_bitset(graph)
    depends = frozenset(
        (a, b) for a, b in closure.iter_edges() if a != b
    )
    return DependencyRelation(follow=follow, depends=depends)
