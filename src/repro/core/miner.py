"""The :class:`ProcessMiner` facade — the library's front door.

Dispatches between Algorithms 1, 2 and 3 (explicitly or by inspecting the
log), applies the Section 6 noise threshold, optionally learns edge
conditions (Section 7), and packages everything as a
:class:`MiningResult` with the mined graph, a reconstructed
:class:`~repro.model.process.ProcessModel`, and diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.conditions import ConditionsMiner, MinedCondition
from repro.core.cyclic import mine_cyclic
from repro.core.general_dag import MiningTrace, mine_general_dag
from repro.core.special_dag import mine_special_dag
from repro.errors import MiningError
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog
from repro.model.activity import Activity
from repro.model.process import ProcessModel
from repro.obs.recorder import Recorder, resolve_recorder

#: Algorithm selector values.
ALGORITHM_SPECIAL = "special-dag"    # Algorithm 1
ALGORITHM_GENERAL = "general-dag"    # Algorithm 2
ALGORITHM_CYCLIC = "cyclic"          # Algorithm 3
ALGORITHM_AUTO = "auto"

_ALGORITHMS = (
    ALGORITHM_SPECIAL,
    ALGORITHM_GENERAL,
    ALGORITHM_CYCLIC,
    ALGORITHM_AUTO,
)


@dataclass
class MiningResult:
    """Everything one mining run produced.

    Attributes
    ----------
    graph:
        The mined control-flow graph.
    algorithm:
        Which algorithm actually ran (after ``auto`` resolution).
    trace:
        Stage diagnostics (empty for Algorithm 1, which has no optional
        stages).
    conditions:
        Per-edge learned conditions when conditions mining was requested.
    source, sink:
        The initiating/terminating activities observed in the log.
    """

    graph: DiGraph
    algorithm: str
    trace: MiningTrace = field(default_factory=MiningTrace)
    conditions: Dict[Tuple[str, str], MinedCondition] = field(
        default_factory=dict
    )
    source: Optional[str] = None
    sink: Optional[str] = None

    def to_process_model(self, name: str = "mined") -> ProcessModel:
        """Package the mined graph (and conditions) as a process model.

        Requires the graph to have a unique source and sink — true for
        graphs mined from well-formed logs.
        """
        conditions = {
            edge: mined.condition
            for edge, mined in self.conditions.items()
            if self.graph.has_edge(*edge)
        }
        return ProcessModel(
            name,
            activities=[Activity(a) for a in sorted(self.graph.nodes())],
            edges=list(self.graph.edges()),
            conditions=conditions,
            source=self.source,
            sink=self.sink,
        )


class ProcessMiner:
    """High-level miner: log in, process graph (and conditions) out.

    Parameters
    ----------
    algorithm:
        ``"special-dag"`` (Algorithm 1), ``"general-dag"`` (Algorithm 2),
        ``"cyclic"`` (Algorithm 3) or ``"auto"`` (default).  ``auto``
        picks Algorithm 3 when some execution repeats an activity,
        Algorithm 1 when every execution contains every activity exactly
        once, and Algorithm 2 otherwise.
    threshold:
        Section 6 noise threshold ``T``; 0 disables noise handling.
        (Algorithm 1 has no thresholded variant in the paper; requesting
        a threshold with ``special-dag`` is an error.)
    learn_conditions:
        Whether to run Section 7's conditions mining on the result.
    conditions_miner:
        Custom conditions learner (defaults to a fresh
        :class:`ConditionsMiner`).
    jobs:
        Worker processes for pair extraction and step-5 marking
        (``None`` defers to the ``REPRO_JOBS`` environment variable;
        1 = serial).  The mined graph is identical for any value.
    kernel:
        Mining kernel name — ``"pure"``, ``"bitset"`` or ``"numpy"``
        (``None`` defers to ``REPRO_KERNEL``, else the default
        ``bitset``).  Kernels only change throughput, never the mined
        graph; see :mod:`repro.core.kernels`.
    recorder:
        :mod:`repro.obs` recorder threaded through every stage (spans
        and the stable metric catalogue of ``docs/OBSERVABILITY.md``).
        ``None`` (the default) uses the shared no-op recorder, whose
        cost is unmeasurable.

    Examples
    --------
    >>> from repro.logs.event_log import EventLog
    >>> log = EventLog.from_sequences(["ABCE", "ACBE", "ABCE"])
    >>> result = ProcessMiner().mine(log)
    >>> result.algorithm
    'special-dag'
    >>> sorted(result.graph.edges())
    [('A', 'B'), ('A', 'C'), ('B', 'E'), ('C', 'E')]
    """

    def __init__(
        self,
        algorithm: str = ALGORITHM_AUTO,
        threshold: int = 0,
        learn_conditions: bool = False,
        conditions_miner: Optional[ConditionsMiner] = None,
        jobs: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        kernel: Optional[str] = None,
    ) -> None:
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {_ALGORITHMS}, got {algorithm!r}"
            )
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.algorithm = algorithm
        self.threshold = threshold
        self.learn_conditions = learn_conditions
        self.conditions_miner = conditions_miner or ConditionsMiner()
        self.jobs = jobs
        self.kernel = kernel
        self.recorder: Recorder = resolve_recorder(recorder)

    def mine(self, log: EventLog) -> MiningResult:
        """Mine ``log`` into a :class:`MiningResult`."""
        log.require_non_empty()
        algorithm = self._resolve_algorithm(log)
        recorder = self.recorder
        trace = MiningTrace(recorder=recorder)

        with recorder.span("mine", algorithm=algorithm):
            if algorithm == ALGORITHM_SPECIAL:
                if self.threshold > 1:
                    raise MiningError(
                        "the noise threshold applies to Algorithms 2 and "
                        "3; use algorithm='general-dag' for noisy logs"
                    )
                graph = mine_special_dag(
                    log, jobs=self.jobs, recorder=recorder
                )
            elif algorithm == ALGORITHM_GENERAL:
                graph = mine_general_dag(
                    log,
                    threshold=self.threshold,
                    trace=trace,
                    jobs=self.jobs,
                    kernel=self.kernel,
                )
            else:
                graph = mine_cyclic(
                    log,
                    threshold=self.threshold,
                    trace=trace,
                    jobs=self.jobs,
                    kernel=self.kernel,
                )

        source, sink = _endpoints(log)
        result = MiningResult(
            graph=graph,
            algorithm=algorithm,
            trace=trace,
            source=source,
            sink=sink,
        )
        if self.learn_conditions:
            with recorder.span("conditions"):
                result.conditions = self.conditions_miner.mine(
                    log, graph, recorder=recorder
                )
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_algorithm(self, log: EventLog) -> str:
        if self.algorithm != ALGORITHM_AUTO:
            return self.algorithm
        activities = log.activities()
        has_repetition = False
        all_complete = True
        for execution in log:
            sequence = execution.sequence
            distinct = set(sequence)
            if len(distinct) != len(sequence):
                has_repetition = True
                break
            if distinct != activities:
                all_complete = False
        if has_repetition:
            return ALGORITHM_CYCLIC
        if all_complete:
            return ALGORITHM_SPECIAL
        return ALGORITHM_GENERAL


def _endpoints(log: EventLog) -> Tuple[Optional[str], Optional[str]]:
    """The initiating/terminating activities, when the log agrees on them."""
    firsts = {execution.first_activity for execution in log if len(execution)}
    lasts = {execution.last_activity for execution in log if len(execution)}
    source = firsts.pop() if len(firsts) == 1 else None
    sink = lasts.pop() if len(lasts) == 1 else None
    return source, sink
