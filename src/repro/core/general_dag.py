"""Algorithm 2 (General DAG) — Section 4 of the paper.

Drops Algorithm 1's every-activity-every-execution assumption: activities
may be optional, so a dependency graph alone need not admit every logged
execution (Example 5).  Algorithm 2 therefore:

1. collects ordered pairs per execution (step 2);
2. removes 2-cycles (step 3);
3. removes all edges inside strongly connected components of the followings
   graph (step 4) — mutual followings through longer cycles also signal
   independence;
4. for each execution, transitively reduces the *induced* subgraph (the
   current edges activated in that execution's order) and marks the
   surviving edges (step 5);
5. keeps only marked edges (step 6) — each kept edge is needed by at least
   one execution, which preserves execution completeness while heuristically
   minimizing edges.

The optional ``threshold`` implements Section 6's noise handling: ordered
pairs seen in fewer than ``T`` executions are discarded before step 3.

High-throughput core
--------------------
Real logs are dominated by repeated trace variants, so the pipeline here
is built around three ideas (the naive original is retained verbatim in
:mod:`repro.core.reference` for differential testing):

* **Interning** — vertex labels become dense integer ids and ordered
  pairs become single packed ints ``u * n + v``
  (:mod:`repro.core.interning`), so every set operation of steps 2–6
  runs over small ints, and step 5 reduces packed edge sets directly
  (:func:`repro.graphs.transitive.transitive_reduction_packed`) instead
  of building a :class:`~repro.graphs.digraph.DiGraph` per execution.
* **Variant deduplication** — identical :class:`PreparedExecution`\\ s
  collapse into one weighted variant; step-2 counters use
  multiplicities and step 5 runs once per variant, with a further memo
  on the *induced edge set* shared across variants.
* **Opt-in parallelism** — ``jobs=N`` (or ``REPRO_JOBS``) fans pair
  extraction and step-5 reductions out over worker processes with a
  deterministic union merge (:mod:`repro.core.parallel`).

:func:`mine_prepared` exposes the step 2–6 pipeline over pre-extracted
pair sets so that Algorithm 3 can reuse it on relabelled executions;
:func:`mine_variants` is the variant-weighted core shared with the
incremental miner.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.interning import InternTable, PackedVariant, intern_variants
from repro.core.parallel import (
    process_map_timed,
    resolve_jobs,
    split_chunks,
)
from repro.errors import EmptyLogError
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import component_map
from repro.graphs.transitive import transitive_reduction_packed
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.obs.recorder import NULL_RECORDER, Recorder

Vertex = Hashable
Pair = Tuple[Vertex, Vertex]

#: ``(prepared, multiplicity)`` — one deduplicated trace variant.
WeightedVariant = Tuple["PreparedExecution", int]


@dataclass(frozen=True)
class PreparedExecution:
    """One execution reduced to what steps 2–6 need.

    Attributes
    ----------
    vertices:
        The vertices (activities, or labelled instances for Algorithm 3)
        that completed in the execution.
    pairs:
        Ordered vertex pairs ``(u, v)`` — ``u`` terminated before ``v``
        started.
    overlaps:
        Canonical (sorted) pairs of vertices observed overlapping in
        time; overlapping activities are independent (Section 2), so the
        miner treats an overlap like seeing the pair in both orders.
    """

    vertices: FrozenSet[Vertex]
    pairs: FrozenSet[Pair]
    overlaps: FrozenSet[Pair] = frozenset()


@dataclass
class MiningTrace:
    """Stage-by-stage diagnostics of one Algorithm 2/3 run.

    Edge counts after each step let the ablation benches show what each
    stage contributes; ``pair_counts`` holds the Section 6 noise counters.
    The throughput fields (``timings``, ``execution_count``,
    ``variant_count``, ``reduction_cache_hits``/``misses``, ``jobs``)
    feed ``repro-miner mine --profile`` and the performance harness.

    Since the observability layer landed, ``MiningTrace`` is a thin
    façade over :mod:`repro.obs`: every stage runs inside
    :meth:`stage`, which opens a ``mine/<name>`` span on ``recorder``
    (wall + CPU time, nesting) and mirrors the wall seconds into the
    legacy ``timings`` dict, and :meth:`publish` copies the counters
    into the recorder's :class:`~repro.obs.metrics.MetricsRegistry`
    under the stable names of ``docs/OBSERVABILITY.md``.  With the
    default :data:`~repro.obs.recorder.NULL_RECORDER` all of that is a
    no-op and only the legacy fields are filled, exactly as before.
    """

    #: Observability sink; the shared no-op recorder unless a run
    #: opted in (``--metrics-out``, the perf harness, tests).
    recorder: Recorder = field(default=NULL_RECORDER, repr=False)
    pair_counts: Counter = field(default_factory=Counter)
    overlap_counts: Counter = field(default_factory=Counter)
    edges_after_step2: int = 0
    edges_dropped_by_threshold: int = 0
    edges_dropped_by_overlap: int = 0
    edges_after_step3: int = 0
    edges_after_step4: int = 0
    edges_after_step6: int = 0
    scc_edge_removals: int = 0
    #: Per-stage wall-clock seconds (prepare/intern/step2/.../step6).
    timings: Dict[str, float] = field(default_factory=dict)
    #: Executions mined (sum of variant multiplicities).
    execution_count: int = 0
    #: Distinct trace variants after deduplication.
    variant_count: int = 0
    #: Step-5 reductions answered by the induced-edge-set memo.
    reduction_cache_hits: int = 0
    #: Step-5 reductions actually computed.
    reduction_cache_misses: int = 0
    #: Worker processes used (1 = serial).
    jobs: int = 1

    def dedup_ratio(self) -> float:
        """Executions per distinct variant (1.0 = no duplication)."""
        if not self.variant_count:
            return 1.0
        return self.execution_count / self.variant_count

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Run one pipeline stage under a ``mine/<name>`` span.

        Wall seconds also accumulate into the legacy ``timings`` dict,
        so ``--profile`` and every pre-observability consumer keep
        working unchanged.
        """
        with self.recorder.span(f"mine/{name}"):
            started = perf_counter()
            try:
                yield
            finally:
                self.timings[name] = (
                    self.timings.get(name, 0.0)
                    + perf_counter()
                    - started
                )

    def publish(self) -> None:
        """Mirror the trace counters into the recorder's registry.

        Metric names are part of the stable catalogue
        (``docs/OBSERVABILITY.md``).  No-op under the null recorder.
        """
        recorder = self.recorder
        if not recorder.enabled:
            return
        recorder.count(
            "repro_mine_executions_total", self.execution_count
        )
        recorder.count("repro_mine_variants_total", self.variant_count)
        recorder.count(
            "repro_mine_pairs_extracted_total", len(self.pair_counts)
        )
        recorder.count(
            "repro_mine_step5_cache_hits_total",
            self.reduction_cache_hits,
        )
        recorder.count(
            "repro_mine_step5_cache_misses_total",
            self.reduction_cache_misses,
        )
        recorder.count(
            "repro_mine_scc_edges_removed_total", self.scc_edge_removals
        )
        recorder.count(
            "repro_mine_edges_dropped_total",
            self.edges_dropped_by_threshold,
            labels={"cause": "threshold"},
        )
        recorder.count(
            "repro_mine_edges_dropped_total",
            self.edges_dropped_by_overlap,
            labels={"cause": "overlap"},
        )
        for stage_name, edge_count in (
            ("step2", self.edges_after_step2),
            ("step3", self.edges_after_step3),
            ("step4", self.edges_after_step4),
            ("step6", self.edges_after_step6),
        ):
            recorder.gauge(
                "repro_mine_edges",
                edge_count,
                labels={"stage": stage_name},
            )
        recorder.gauge("repro_mine_jobs", self.jobs)


# ----------------------------------------------------------------------
# Preparation (step 2 extraction) with variant dedup and optional jobs
# ----------------------------------------------------------------------
def _prepare_chunk(
    args: Tuple[bool, List[Execution]],
) -> List[PreparedExecution]:
    """Worker: extract prepared views for a chunk of executions."""
    labelled, executions = args
    if labelled:
        return [
            PreparedExecution(
                vertices=frozenset(execution.labelled_sequence()),
                pairs=execution.labelled_ordered_pair_set(),
                overlaps=execution.labelled_overlapping_pair_set(),
            )
            for execution in executions
        ]
    return [
        PreparedExecution(
            vertices=execution.activities,
            pairs=execution.ordered_pair_set(),
            overlaps=execution.overlapping_pair_set(),
        )
        for execution in executions
    ]


def prepare_executions(
    executions: Sequence[Execution],
    labelled: bool = False,
    jobs: Optional[int] = None,
    recorder: Recorder = NULL_RECORDER,
) -> List[PreparedExecution]:
    """Extract :class:`PreparedExecution` views, once per trace variant.

    Executions with equal :meth:`~repro.logs.execution.Execution.
    variant_key` share one prepared object, so the quadratic pair
    extraction runs once per *distinct* variant.  With ``jobs > 1`` the
    distinct variants are fanned out over worker processes; the returned
    list is aligned with the input order either way.
    """
    jobs = resolve_jobs(jobs)
    keys = [execution.variant_key() for execution in executions]
    index_of_key: Dict[Tuple, int] = {}
    representatives: List[Execution] = []
    for key, execution in zip(keys, executions, strict=True):
        if key not in index_of_key:
            index_of_key[key] = len(representatives)
            representatives.append(execution)
    chunks = [
        (labelled, chunk)
        for chunk in split_chunks(representatives, jobs * 4)
    ]
    prepared: List[PreparedExecution] = []
    for result in process_map_timed(
        _prepare_chunk, chunks, jobs, recorder=recorder, stage="prepare"
    ):
        prepared.extend(result)
    return [prepared[index_of_key[key]] for key in keys]


def prepare_log(
    log: EventLog, jobs: Optional[int] = None
) -> List[PreparedExecution]:
    """Extract :class:`PreparedExecution` views from a log (plain labels)."""
    return prepare_executions(list(log), labelled=False, jobs=jobs)


# ----------------------------------------------------------------------
# Fused packed preparation (dedup + intern + pair extraction in one pass)
# ----------------------------------------------------------------------
def _pack_chunk(
    args: Tuple[Dict[Vertex, int], int, bool, List[Execution]],
) -> List[Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]]:
    """Worker: extract packed ``(vertices, pairs, overlaps)`` per execution.

    Sequential traces (the common case) never touch label tuples at all:
    ordered pairs are produced directly as packed codes from the interned
    id sequence via the suffix-set trick.  Interval-overlapping traces
    fall back to the cached label-level sets and pack them.
    """
    index, size, labelled, executions = args
    out: List[Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]] = []
    for execution in executions:
        sequence: Sequence[Vertex] = (
            execution.labelled_sequence() if labelled
            else execution.sequence
        )
        ids = [index[label] for label in sequence]
        vertices = frozenset(ids)
        if execution.is_sequential():
            pairs: Set[int] = set()
            later: Set[int] = set()
            for vertex_id in reversed(ids):
                if later:
                    base = vertex_id * size
                    pairs.update(base + other for other in later)
                later.add(vertex_id)
            # The suffix pass adds (a, a) when an activity repeats;
            # same-label pairs belong only to the relabelled view.
            pairs.difference_update(
                vertex_id * size + vertex_id for vertex_id in later
            )
            out.append((vertices, frozenset(pairs), frozenset()))
            continue
        if labelled:
            ordered = execution.labelled_ordered_pair_set()
            overlapping = execution.labelled_overlapping_pair_set()
        else:
            ordered = execution.ordered_pair_set()
            overlapping = execution.overlapping_pair_set()
        out.append((
            vertices,
            frozenset(index[u] * size + index[v] for u, v in ordered),
            frozenset(
                index[u] * size + index[v] for u, v in overlapping
            ),
        ))
    return out


def prepare_packed_log(
    executions: Sequence[Execution],
    labelled: bool = False,
    jobs: Optional[int] = None,
    recorder: Recorder = NULL_RECORDER,
) -> Tuple[InternTable, List[PackedVariant]]:
    """Deduplicate, intern and pack executions in one fused pass.

    This is the fast entry into the step 2–6 core used by
    :func:`mine_general_dag` and Algorithm 3: label-level
    :class:`PreparedExecution` objects are never materialized, so the
    quadratic pair extraction produces packed int codes directly.  The
    returned variants are in first-seen order with multiplicities
    summing to ``len(executions)``.
    """
    jobs = resolve_jobs(jobs)
    keys = [execution.variant_key() for execution in executions]
    multiplicities = Counter(keys)
    seen: Set[Tuple] = set()
    representatives: List[Execution] = []
    representative_keys: List[Tuple] = []
    for key, execution in zip(keys, executions, strict=True):
        if key not in seen:
            seen.add(key)
            representatives.append(execution)
            representative_keys.append(key)

    labels: Set[Vertex] = set()
    if labelled:
        for execution in representatives:
            labels.update(execution.labelled_sequence())
    else:
        for execution in representatives:
            labels.update(execution.activities)
    table = InternTable(labels)
    size = max(len(table), 1)

    chunked = [
        (table.index, size, labelled, chunk)
        for chunk in split_chunks(representatives, jobs * 4)
    ]
    packed_sets: List[
        Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]
    ] = []
    for result in process_map_timed(
        _pack_chunk, chunked, jobs, recorder=recorder, stage="prepare"
    ):
        packed_sets.extend(result)
    variants = [
        PackedVariant(
            vertices=vertices,
            pairs=pairs,
            overlaps=overlaps,
            multiplicity=multiplicities[key],
        )
        for (vertices, pairs, overlaps), key in zip(
            packed_sets, representative_keys, strict=True
        )
    ]
    return table, variants


# ----------------------------------------------------------------------
# Steps 2–6 over packed variants
# ----------------------------------------------------------------------
def _reduce_chunk(
    args: Tuple[int, Optional[Dict[int, int]], List[FrozenSet[int]]],
) -> List[FrozenSet[int]]:
    """Worker: transitively reduce a chunk of packed induced edge sets."""
    n, rank, keys = args
    return [
        transitive_reduction_packed(codes, n, rank) for codes in keys
    ]


def _reverse_code(code: int, n: int) -> int:
    u, v = divmod(code, n)
    return v * n + u


def _topological_ranks(
    edges: Set[int], n: int
) -> Optional[Dict[int, int]]:
    """Topological ranks of the edge-bearing vertices, or ``None`` if
    the packed edge set is cyclic (possible only when step 4 was
    skipped).  Computed once per run so that each step-5 reduction can
    skip its own Kahn pass: a subgraph of a DAG respects any topological
    order of the full DAG."""
    succ: Dict[int, List[int]] = {}
    indegree: Dict[int, int] = {}
    for code in edges:
        u, v = divmod(code, n)
        succ.setdefault(u, []).append(v)
        indegree[v] = indegree.get(v, 0) + 1
        indegree.setdefault(u, 0)
    ready = [u for u, degree in indegree.items() if degree == 0]
    order: List[int] = []
    while ready:
        u = ready.pop()
        order.append(u)
        for v in succ.get(u, ()):
            indegree[v] -= 1
            if indegree[v] == 0:
                ready.append(v)
    if len(order) != len(indegree):
        return None
    return {u: position for position, u in enumerate(order)}


def mine_variants(
    variants: Sequence[WeightedVariant],
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    skip_scc_removal: bool = False,
    skip_execution_marking: bool = False,
    jobs: Optional[int] = None,
) -> DiGraph:
    """Run steps 2–6 of Algorithm 2 over weighted trace variants.

    This is the interned core shared by :func:`mine_prepared` and the
    incremental miner.  Each ``(prepared, multiplicity)`` entry stands
    for ``multiplicity`` identical executions; the result is identical
    to mining the expanded sequence with the naive reference pipeline.
    """
    variants = [(prepared, int(count)) for prepared, count in variants]
    if not variants:
        raise EmptyLogError("cannot mine an empty set of executions")
    trace = trace if trace is not None else MiningTrace()

    with trace.stage("intern"):
        table, packed = intern_variants(variants)
    return _mine_packed(
        table,
        packed,
        threshold=threshold,
        trace=trace,
        skip_scc_removal=skip_scc_removal,
        skip_execution_marking=skip_execution_marking,
        jobs=jobs,
    )


def _mine_packed(
    table: InternTable,
    packed: Sequence[PackedVariant],
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    skip_scc_removal: bool = False,
    skip_execution_marking: bool = False,
    jobs: Optional[int] = None,
    reduction_memo: Optional[
        Dict[FrozenSet[int], FrozenSet[int]]
    ] = None,
) -> DiGraph:
    """Steps 2–6 over already-interned packed variants.

    ``reduction_memo`` optionally persists step-5 results across calls:
    it maps an execution's *induced edge set* to the edges its
    transitive reduction kept.  A reduction depends only on that induced
    set, so a caller whose label table is stable (the incremental miner,
    :meth:`MiningState.finish <repro.core.state.MiningState.finish>`)
    can pass the same dict again and pay only for unseen induced sets.
    """
    if not packed:
        raise EmptyLogError("cannot mine an empty set of executions")
    jobs = resolve_jobs(jobs)
    trace = trace if trace is not None else MiningTrace()
    trace.execution_count = sum(
        variant.multiplicity for variant in packed
    )
    trace.variant_count = len(packed)
    trace.jobs = jobs
    n = max(len(table), 1)

    # Step 2 — union of ordered pairs, with multiplicity-weighted
    # occurrence counters.
    with trace.stage("step2_counters"):
        code_counts: Counter = Counter()
        overlap_code_counts: Counter = Counter()
        vertex_ids: Set[int] = set()
        for variant in packed:
            vertex_ids |= variant.vertices
            count = variant.multiplicity
            if count == 1:
                code_counts.update(variant.pairs)
                overlap_code_counts.update(variant.overlaps)
            else:
                code_counts.update(dict.fromkeys(variant.pairs, count))
                overlap_code_counts.update(
                    dict.fromkeys(variant.overlaps, count)
                )
        # Hot loop: index the label tuple directly instead of calling
        # ``table.unpack`` per code (one attribute lookup + two calls
        # saved per distinct pair; see the pack_unpack bench cell).
        labels = table.labels
        trace.pair_counts = Counter(
            {
                (labels[code // n], labels[code % n]): count
                for code, count in code_counts.items()
            }
        )
        trace.overlap_counts = Counter(
            {
                (labels[code // n], labels[code % n]): count
                for code, count in overlap_code_counts.items()
            }
        )
        edges: Set[int] = set(code_counts)
        trace.edges_after_step2 = len(edges)

    with trace.stage("step3_filters"):
        # Section 6 — drop infrequent pairs before the 2-cycle step.
        if threshold > 1:
            edges = {
                code for code in edges if code_counts[code] >= threshold
            }
        trace.edges_dropped_by_threshold = (
            trace.edges_after_step2 - len(edges)
        )

        # Overlap evidence: activities observed running concurrently are
        # independent (Section 2), equivalent to seeing both orders.  The
        # same threshold guards against spuriously overlapping noisy
        # timestamps.
        min_evidence = max(1, threshold)
        independent: Set[int] = set()
        for code, count in overlap_code_counts.items():
            if count >= min_evidence:
                independent.add(code)
                independent.add(_reverse_code(code, n))
        before_overlap = len(edges)
        if independent:
            edges -= independent
        trace.edges_dropped_by_overlap = before_overlap - len(edges)

        # Step 3 — drop 2-cycles.
        edges = {
            code for code in edges if _reverse_code(code, n) not in edges
        }
        trace.edges_after_step3 = len(edges)
        edges_after_step3 = set(edges)

    # Step 4 — drop edges inside strongly connected components of the
    # followings graph (one id-level graph per run, not per execution).
    with trace.stage("step4_scc"):
        if not skip_scc_removal and edges:
            id_graph = DiGraph(nodes=sorted(vertex_ids))
            for code in edges:
                id_graph.add_edge(code // n, code % n)
            mapping = component_map(id_graph)
            doomed = {
                code
                for code in edges
                if mapping[code // n] == mapping[code % n]
            }
            edges -= doomed
            trace.scc_edge_removals = len(doomed)
        trace.edges_after_step4 = len(edges)

    # Steps 5–6 — keep only edges some execution's transitive reduction
    # needs.  Reduction runs once per distinct *induced edge set*: the
    # memo collapses variants whose executions activate the same edges.
    with trace.stage("step5_reduce"):
        if not skip_execution_marking:
            seen_keys: Dict[FrozenSet[int], None] = {}
            for variant in packed:
                induced = variant.pairs & edges
                if induced not in seen_keys:
                    seen_keys[induced] = None
            distinct_keys = list(seen_keys)
            marked: Set[int] = set()
            if reduction_memo is None:
                missing = distinct_keys
            else:
                # A reduction depends only on its induced edge set, so
                # memoized keys skip the fan-out entirely; their kept
                # edges fold in below like freshly computed ones.
                missing = []
                for key in distinct_keys:
                    kept = reduction_memo.get(key)
                    if kept is None:
                        missing.append(key)
                    else:
                        marked |= kept
            trace.reduction_cache_hits = len(packed) - len(missing)
            trace.reduction_cache_misses = len(missing)
            if missing:
                # One Kahn pass over the surviving edges serves every
                # induced subgraph; ``None`` (cyclic, only when step 4
                # was skipped) keeps the per-reduction cycle check of
                # the legacy pipeline.
                rank = _topological_ranks(edges, n)
                chunked = [
                    (n, rank, chunk)
                    for chunk in split_chunks(missing, jobs)
                ]
                for (_, _, keys), reduced_chunk in zip(
                    chunked,
                    process_map_timed(
                        _reduce_chunk,
                        chunked,
                        jobs,
                        recorder=trace.recorder,
                        stage="step5_reduce",
                    ),
                    strict=True,
                ):
                    for key, kept in zip(
                        keys, reduced_chunk, strict=True
                    ):
                        if reduction_memo is not None:
                            reduction_memo[key] = kept
                        marked |= kept
            edges = marked

    # Materialize the label-level graph.  Node set mirrors the legacy
    # pipeline exactly: every variant vertex, plus the endpoints of the
    # edges that survived step 3 (even if steps 4–6 later pruned them).
    with trace.stage("step6_assemble"):
        node_ids = set(vertex_ids)
        for code in edges_after_step3:
            node_ids.add(code // n)
            node_ids.add(code % n)
        graph = DiGraph(
            nodes=sorted(
                (table.label_of(vertex_id) for vertex_id in node_ids),
                key=repr,
            )
        )
        labels = table.labels
        for code in edges:
            graph.add_edge(labels[code // n], labels[code % n])
        trace.edges_after_step6 = graph.edge_count
    trace.publish()
    return graph


def mine_prepared(
    prepared: Sequence[PreparedExecution],
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    skip_scc_removal: bool = False,
    skip_execution_marking: bool = False,
    jobs: Optional[int] = None,
) -> DiGraph:
    """Run steps 2–6 of Algorithm 2 over prepared executions.

    Parameters
    ----------
    prepared:
        Per-execution vertex and ordered-pair sets.
    threshold:
        Section 6 noise threshold ``T``; ordered pairs occurring in fewer
        than ``T`` executions are dropped before the 2-cycle step.  ``0``
        (and ``1``) keep everything.
    trace:
        Optional diagnostics sink.
    skip_scc_removal, skip_execution_marking:
        Ablation switches disabling step 4 or steps 5–6; used only by the
        ablation benches, never by the public miners.
    jobs:
        Worker processes for step 5 (``None`` defers to ``REPRO_JOBS``,
        defaulting to serial).

    Returns
    -------
    DiGraph
        The mined graph over all vertices seen in ``prepared``.
    """
    if not prepared:
        raise EmptyLogError("cannot mine an empty set of executions")
    # Identical prepared executions collapse into weighted variants;
    # PreparedExecution is frozen and hashable, and Counter preserves
    # first-seen order, so the dedup is deterministic.
    variant_counts = Counter(prepared)
    return mine_variants(
        list(variant_counts.items()),
        threshold=threshold,
        trace=trace,
        skip_scc_removal=skip_scc_removal,
        skip_execution_marking=skip_execution_marking,
        jobs=jobs,
    )


def mine_general_dag(
    log: EventLog,
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    jobs: Optional[int] = None,
) -> DiGraph:
    """Mine a conformal graph of ``log`` with Algorithm 2.

    Parameters
    ----------
    log:
        Executions of one (acyclic) process; activities may be optional.
    threshold:
        Section 6 noise threshold ``T`` (0 disables noise handling).
    trace:
        Optional :class:`MiningTrace` capturing per-stage diagnostics.
    jobs:
        Worker processes for pair extraction and step-5 marking
        (``None`` defers to ``REPRO_JOBS``; 1 = serial).

    Returns
    -------
    DiGraph
        A conformal graph (Theorem 5) over the log's activities.

    Examples
    --------
    Example 7 of the paper — log ``{ABCF, ACDF, ADEF, AECF}``; C, D and E
    form one strongly connected component of followings, hence are mutually
    independent:

    >>> from repro.logs.event_log import EventLog
    >>> log = EventLog.from_sequences(["ABCF", "ACDF", "ADEF", "AECF"])
    >>> sorted(mine_general_dag(log).edges())
    ... # doctest: +NORMALIZE_WHITESPACE
    [('A', 'B'), ('A', 'C'), ('A', 'D'), ('A', 'E'),
     ('B', 'C'), ('C', 'F'), ('D', 'F'), ('E', 'F')]
    """
    log.require_non_empty()
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    trace = trace if trace is not None else MiningTrace()
    with trace.stage("prepare"):
        table, variants = prepare_packed_log(
            list(log),
            labelled=False,
            jobs=jobs,
            recorder=trace.recorder,
        )
    return _mine_packed(
        table, variants, threshold=threshold, trace=trace, jobs=jobs
    )


def presence_by_vertex(
    prepared: Sequence[PreparedExecution],
) -> Dict[Vertex, int]:
    """Count, per vertex, how many prepared executions contain it."""
    counts: Counter = Counter()
    for execution in prepared:
        counts.update(execution.vertices)
    return dict(counts)
