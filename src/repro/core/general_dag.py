"""Algorithm 2 (General DAG) — Section 4 of the paper.

Drops Algorithm 1's every-activity-every-execution assumption: activities
may be optional, so a dependency graph alone need not admit every logged
execution (Example 5).  Algorithm 2 therefore:

1. collects ordered pairs per execution (step 2);
2. removes 2-cycles (step 3);
3. removes all edges inside strongly connected components of the followings
   graph (step 4) — mutual followings through longer cycles also signal
   independence;
4. for each execution, transitively reduces the *induced* subgraph (the
   current edges activated in that execution's order) and marks the
   surviving edges (step 5);
5. keeps only marked edges (step 6) — each kept edge is needed by at least
   one execution, which preserves execution completeness while heuristically
   minimizing edges.

The optional ``threshold`` implements Section 6's noise handling: ordered
pairs seen in fewer than ``T`` executions are discarded before step 3.

:func:`mine_prepared` exposes the step 2–6 pipeline over pre-extracted
pair sets so that Algorithm 3 can reuse it on relabelled executions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.followings import remove_two_cycles
from repro.errors import EmptyLogError
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import remove_intra_component_edges
from repro.graphs.transitive import transitive_reduction_edges
from repro.logs.event_log import EventLog

Vertex = Hashable
Pair = Tuple[Vertex, Vertex]


@dataclass(frozen=True)
class PreparedExecution:
    """One execution reduced to what steps 2–6 need.

    Attributes
    ----------
    vertices:
        The vertices (activities, or labelled instances for Algorithm 3)
        that completed in the execution.
    pairs:
        Ordered vertex pairs ``(u, v)`` — ``u`` terminated before ``v``
        started.
    overlaps:
        Canonical (sorted) pairs of vertices observed overlapping in
        time; overlapping activities are independent (Section 2), so the
        miner treats an overlap like seeing the pair in both orders.
    """

    vertices: FrozenSet[Vertex]
    pairs: FrozenSet[Pair]
    overlaps: FrozenSet[Pair] = frozenset()


@dataclass
class MiningTrace:
    """Stage-by-stage diagnostics of one Algorithm 2/3 run.

    Edge counts after each step let the ablation benches show what each
    stage contributes; ``pair_counts`` holds the Section 6 noise counters.
    """

    pair_counts: Counter = field(default_factory=Counter)
    overlap_counts: Counter = field(default_factory=Counter)
    edges_after_step2: int = 0
    edges_dropped_by_threshold: int = 0
    edges_dropped_by_overlap: int = 0
    edges_after_step3: int = 0
    edges_after_step4: int = 0
    edges_after_step6: int = 0
    scc_edge_removals: int = 0


def prepare_log(log: EventLog) -> List[PreparedExecution]:
    """Extract :class:`PreparedExecution` views from a log (plain labels)."""
    prepared = []
    for execution in log:
        prepared.append(
            PreparedExecution(
                vertices=execution.activities,
                pairs=frozenset(execution.ordered_pairs()),
                overlaps=frozenset(execution.overlapping_pairs()),
            )
        )
    return prepared


def mine_prepared(
    prepared: Sequence[PreparedExecution],
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    skip_scc_removal: bool = False,
    skip_execution_marking: bool = False,
) -> DiGraph:
    """Run steps 2–6 of Algorithm 2 over prepared executions.

    Parameters
    ----------
    prepared:
        Per-execution vertex and ordered-pair sets.
    threshold:
        Section 6 noise threshold ``T``; ordered pairs occurring in fewer
        than ``T`` executions are dropped before the 2-cycle step.  ``0``
        (and ``1``) keep everything.
    trace:
        Optional diagnostics sink.
    skip_scc_removal, skip_execution_marking:
        Ablation switches disabling step 4 or steps 5–6; used only by the
        ablation benches, never by the public miners.

    Returns
    -------
    DiGraph
        The mined graph over all vertices seen in ``prepared``.
    """
    if not prepared:
        raise EmptyLogError("cannot mine an empty set of executions")
    trace = trace if trace is not None else MiningTrace()

    # Step 2 — union of ordered pairs, with occurrence counters.
    counts: Counter = Counter()
    overlap_counts: Counter = Counter()
    vertices: Set[Vertex] = set()
    for execution in prepared:
        vertices |= execution.vertices
        counts.update(execution.pairs)
        overlap_counts.update(execution.overlaps)
    trace.pair_counts = counts
    trace.overlap_counts = overlap_counts
    edges: Set[Pair] = set(counts)
    trace.edges_after_step2 = len(edges)

    # Section 6 — drop infrequent pairs before the 2-cycle step.
    if threshold > 1:
        edges = {pair for pair in edges if counts[pair] >= threshold}
    trace.edges_dropped_by_threshold = trace.edges_after_step2 - len(edges)

    # Overlap evidence: activities observed running concurrently are
    # independent (Section 2), equivalent to seeing both orders.  The same
    # threshold guards against spuriously overlapping noisy timestamps.
    min_evidence = max(1, threshold)
    independent = {
        pair
        for pair, count in overlap_counts.items()
        if count >= min_evidence
    }
    before_overlap = len(edges)
    if independent:
        edges = {
            (u, v)
            for u, v in edges
            if (u, v) not in independent and (v, u) not in independent
        }
    trace.edges_dropped_by_overlap = before_overlap - len(edges)

    # Step 3 — drop 2-cycles.
    edges = remove_two_cycles(edges)
    trace.edges_after_step3 = len(edges)

    graph = DiGraph(nodes=sorted(vertices, key=repr), edges=edges)

    # Step 4 — drop edges inside strongly connected components.
    if not skip_scc_removal:
        trace.scc_edge_removals = remove_intra_component_edges(graph)
    trace.edges_after_step4 = graph.edge_count

    # Steps 5–6 — keep only edges some execution's transitive reduction
    # needs.
    if not skip_execution_marking:
        marked: Set[Pair] = set()
        edge_set = graph.edge_set()
        for execution in prepared:
            induced_edges = execution.pairs & edge_set
            induced = DiGraph(
                nodes=execution.vertices, edges=induced_edges
            )
            marked |= transitive_reduction_edges(induced)
        graph = graph.edge_subgraph(marked)
    trace.edges_after_step6 = graph.edge_count
    return graph


def mine_general_dag(
    log: EventLog,
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
) -> DiGraph:
    """Mine a conformal graph of ``log`` with Algorithm 2.

    Parameters
    ----------
    log:
        Executions of one (acyclic) process; activities may be optional.
    threshold:
        Section 6 noise threshold ``T`` (0 disables noise handling).
    trace:
        Optional :class:`MiningTrace` capturing per-stage diagnostics.

    Returns
    -------
    DiGraph
        A conformal graph (Theorem 5) over the log's activities.

    Examples
    --------
    Example 7 of the paper — log ``{ABCF, ACDF, ADEF, AECF}``; C, D and E
    form one strongly connected component of followings, hence are mutually
    independent:

    >>> from repro.logs.event_log import EventLog
    >>> log = EventLog.from_sequences(["ABCF", "ACDF", "ADEF", "AECF"])
    >>> sorted(mine_general_dag(log).edges())
    ... # doctest: +NORMALIZE_WHITESPACE
    [('A', 'B'), ('A', 'C'), ('A', 'D'), ('A', 'E'),
     ('B', 'C'), ('C', 'F'), ('D', 'F'), ('E', 'F')]
    """
    log.require_non_empty()
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    return mine_prepared(prepare_log(log), threshold=threshold, trace=trace)


def presence_by_vertex(
    prepared: Sequence[PreparedExecution],
) -> Dict[Vertex, int]:
    """Count, per vertex, how many prepared executions contain it."""
    counts: Counter = Counter()
    for execution in prepared:
        counts.update(execution.vertices)
    return dict(counts)
