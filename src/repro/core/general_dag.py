"""Algorithm 2 (General DAG) — Section 4 of the paper.

Drops Algorithm 1's every-activity-every-execution assumption: activities
may be optional, so a dependency graph alone need not admit every logged
execution (Example 5).  Algorithm 2 therefore:

1. collects ordered pairs per execution (step 2);
2. removes 2-cycles (step 3);
3. removes all edges inside strongly connected components of the followings
   graph (step 4) — mutual followings through longer cycles also signal
   independence;
4. for each execution, transitively reduces the *induced* subgraph (the
   current edges activated in that execution's order) and marks the
   surviving edges (step 5);
5. keeps only marked edges (step 6) — each kept edge is needed by at least
   one execution, which preserves execution completeness while heuristically
   minimizing edges.

The optional ``threshold`` implements Section 6's noise handling: ordered
pairs seen in fewer than ``T`` executions are discarded before step 3.

High-throughput core
--------------------
Real logs are dominated by repeated trace variants, so the pipeline here
is built around four ideas (the naive original is retained verbatim in
:mod:`repro.core.reference` for differential testing):

* **Interning** — vertex labels become dense integer ids and ordered
  pairs become single packed ints ``u * n + v``
  (:mod:`repro.core.interning`), so every set operation of steps 2–6
  runs over small ints.
* **Variant deduplication** — identical :class:`PreparedExecution`\\ s
  collapse into one weighted variant; step-2 counters use
  multiplicities and step 5 runs once per variant, with a further memo
  on the *induced edge set* shared across variants.
* **Pluggable kernels** (:mod:`repro.core.kernels`) — under the default
  ``bitset`` kernel, sequential no-repeat traces (the dominant shape)
  take a fused bit-row pipeline: step 2 builds per-source successor
  bitmasks directly from the id sequences (no pair-set materialization),
  steps 3–4 are bitmask algebra, and step 5 reduces *all* such variants
  in one slotted bit-parallel Algorithm 4 pass instead of one graph walk
  per variant.  ``--kernel pure`` keeps the scalar path; ``--kernel
  numpy`` vectorizes the batch when numpy is installed.
* **Opt-in parallelism** — ``jobs=N`` (or ``REPRO_JOBS``) fans pair
  extraction and step-5 reductions (scalar chunks and packed mask
  chunks alike) out over worker processes with a deterministic union
  merge (:mod:`repro.core.parallel`).

:func:`mine_prepared` exposes the step 2–6 pipeline over pre-extracted
pair sets so that Algorithm 3 can reuse it on relabelled executions;
:func:`mine_variants` is the variant-weighted core shared with the
incremental miner.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.interning import InternTable, PackedVariant, intern_variants
from repro.core.kernels import (
    Kernel,
    KernelState,
    ReduceContext,
    ReduceStats,
    get_kernel,
)
from repro.core.parallel import (
    pack_masks,
    process_map_timed,
    resolve_jobs,
    split_chunks,
    unpack_masks,
)
from repro.errors import EmptyLogError
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import component_map, component_map_adjacency
from repro.graphs.transitive import transitive_reduction_packed
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.obs.recorder import NULL_RECORDER, Recorder

Vertex = Hashable
Pair = Tuple[Vertex, Vertex]

#: ``(prepared, multiplicity)`` — one deduplicated trace variant.
WeightedVariant = Tuple["PreparedExecution", int]

#: Minimum batch size before step-5 mask reductions fan out to workers.
_MASK_FANOUT_MIN = 64

#: Sentinel distinguishing "not cached" from a cached ``None`` verdict.
_UNKNOWN = object()


@dataclass(frozen=True)
class PreparedExecution:
    """One execution reduced to what steps 2–6 need.

    Attributes
    ----------
    vertices:
        The vertices (activities, or labelled instances for Algorithm 3)
        that completed in the execution.
    pairs:
        Ordered vertex pairs ``(u, v)`` — ``u`` terminated before ``v``
        started.
    overlaps:
        Canonical (sorted) pairs of vertices observed overlapping in
        time; overlapping activities are independent (Section 2), so the
        miner treats an overlap like seeing the pair in both orders.
    """

    vertices: FrozenSet[Vertex]
    pairs: FrozenSet[Pair]
    overlaps: FrozenSet[Pair] = frozenset()


@dataclass
class MiningTrace:
    """Stage-by-stage diagnostics of one Algorithm 2/3 run.

    Edge counts after each step let the ablation benches show what each
    stage contributes; ``pair_counts`` holds the Section 6 noise counters.
    The throughput fields (``timings``, ``execution_count``,
    ``variant_count``, the ``reduction_cache_*`` counters, ``kernel``,
    ``jobs``) feed ``repro-miner mine --profile`` and the performance
    harness.

    ``pair_counts`` and ``overlap_counts`` are *lazy*: the fused kernel
    pipeline never builds label-level counters on its own behalf, so
    they materialize from the packed run data on first access (and stay
    assignable, which the reference pipeline uses).  ``publish`` reports
    the distinct-pair count without forcing materialization.

    Step-5 cache traffic is reported in three separate buckets
    (``--profile`` and the ``repro_kernel_prefix_cache_events_total``
    metric): ``reduction_cache_hits`` are reductions answered outright
    by an exact key (induced-edge-set memo or an already-reduced variant
    mask), ``reduction_cache_prefix_extends`` are reductions that
    resumed mid-walk from a shared variant prefix and paid only for the
    suffix, and ``reduction_cache_misses`` were computed cold.

    Since the observability layer landed, ``MiningTrace`` is a thin
    façade over :mod:`repro.obs`: every stage runs inside
    :meth:`stage`, which opens a ``mine/<name>`` span on ``recorder``
    (wall + CPU time, nesting) and mirrors the wall seconds into the
    legacy ``timings`` dict, and :meth:`publish` copies the counters
    into the recorder's :class:`~repro.obs.metrics.MetricsRegistry`
    under the stable names of ``docs/OBSERVABILITY.md``.  With the
    default :data:`~repro.obs.recorder.NULL_RECORDER` all of that is a
    no-op and only the legacy fields are filled, exactly as before.
    """

    #: Observability sink; the shared no-op recorder unless a run
    #: opted in (``--metrics-out``, the perf harness, tests).
    recorder: Recorder = field(default=NULL_RECORDER, repr=False)
    edges_after_step2: int = 0
    edges_dropped_by_threshold: int = 0
    edges_dropped_by_overlap: int = 0
    edges_after_step3: int = 0
    edges_after_step4: int = 0
    edges_after_step6: int = 0
    scc_edge_removals: int = 0
    #: Per-stage wall-clock seconds (prepare/intern/step2/.../step6).
    timings: Dict[str, float] = field(default_factory=dict)
    #: Executions mined (sum of variant multiplicities).
    execution_count: int = 0
    #: Distinct trace variants after deduplication.
    variant_count: int = 0
    #: Step-5 reductions answered by an exact cache key.
    reduction_cache_hits: int = 0
    #: Step-5 reductions actually computed (cold).
    reduction_cache_misses: int = 0
    #: Step-5 reductions resumed from a cached variant prefix.
    reduction_cache_prefix_extends: int = 0
    #: Computed reductions per implementation path
    #: (``slotted``/``walker``/``scalar``).
    reduction_paths: Dict[str, int] = field(default_factory=dict)
    #: Kernel that executed the hot paths (``pure``/``bitset``/``numpy``).
    kernel: str = "pure"
    #: Worker processes used (1 = serial).
    jobs: int = 1

    def __post_init__(self) -> None:
        self._pair_counts: Optional[Counter] = Counter()
        self._overlap_counts: Optional[Counter] = Counter()
        self._pair_thunk: Optional[Callable[[], Counter]] = None
        self._overlap_thunk: Optional[Callable[[], Counter]] = None
        self._distinct_pairs: Optional[int] = None

    # ------------------------------------------------------------------
    # Lazy label-level counters
    # ------------------------------------------------------------------
    @property
    def pair_counts(self) -> Counter:
        """Label-level follows-pair counters (Section 6 evidence)."""
        if self._pair_counts is None:
            assert self._pair_thunk is not None
            self._pair_counts = self._pair_thunk()
            self._pair_thunk = None
        return self._pair_counts

    @pair_counts.setter
    def pair_counts(self, value: Counter) -> None:
        self._pair_counts = value
        self._pair_thunk = None

    @property
    def overlap_counts(self) -> Counter:
        """Label-level overlapping-pair counters."""
        if self._overlap_counts is None:
            assert self._overlap_thunk is not None
            self._overlap_counts = self._overlap_thunk()
            self._overlap_thunk = None
        return self._overlap_counts

    @overlap_counts.setter
    def overlap_counts(self, value: Counter) -> None:
        self._overlap_counts = value
        self._overlap_thunk = None

    def defer_pair_counts(
        self, thunk: Callable[[], Counter], distinct: int
    ) -> None:
        """Materialize ``pair_counts`` from ``thunk`` on first access.

        ``distinct`` is the number of distinct pairs the thunk would
        produce, letting :meth:`publish` report the pair count without
        paying for the label-level Counter nobody may ever read.
        """
        self._pair_counts = None
        self._pair_thunk = thunk
        self._distinct_pairs = distinct

    def defer_overlap_counts(self, thunk: Callable[[], Counter]) -> None:
        """Materialize ``overlap_counts`` from ``thunk`` on first access."""
        self._overlap_counts = None
        self._overlap_thunk = thunk

    def dedup_ratio(self) -> float:
        """Executions per distinct variant (1.0 = no duplication)."""
        if not self.variant_count:
            return 1.0
        return self.execution_count / self.variant_count

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Run one pipeline stage under a ``mine/<name>`` span.

        Wall seconds also accumulate into the legacy ``timings`` dict,
        so ``--profile`` and every pre-observability consumer keep
        working unchanged.
        """
        with self.recorder.span(f"mine/{name}"):
            started = perf_counter()
            try:
                yield
            finally:
                self.timings[name] = (
                    self.timings.get(name, 0.0)
                    + perf_counter()
                    - started
                )

    def publish(self) -> None:
        """Mirror the trace counters into the recorder's registry.

        Metric names are part of the stable catalogue
        (``docs/OBSERVABILITY.md``).  No-op under the null recorder.
        """
        recorder = self.recorder
        if not recorder.enabled:
            return
        if self._pair_counts is not None:
            pairs_extracted = len(self._pair_counts)
        else:
            pairs_extracted = self._distinct_pairs or 0
        recorder.count(
            "repro_mine_executions_total", self.execution_count
        )
        recorder.count("repro_mine_variants_total", self.variant_count)
        recorder.count(
            "repro_mine_pairs_extracted_total", pairs_extracted
        )
        recorder.count(
            "repro_mine_step5_cache_hits_total",
            self.reduction_cache_hits,
        )
        recorder.count(
            "repro_mine_step5_cache_misses_total",
            self.reduction_cache_misses,
        )
        recorder.count(
            "repro_mine_step5_cache_prefix_extends_total",
            self.reduction_cache_prefix_extends,
        )
        recorder.count(
            "repro_mine_scc_edges_removed_total", self.scc_edge_removals
        )
        recorder.count(
            "repro_mine_edges_dropped_total",
            self.edges_dropped_by_threshold,
            labels={"cause": "threshold"},
        )
        recorder.count(
            "repro_mine_edges_dropped_total",
            self.edges_dropped_by_overlap,
            labels={"cause": "overlap"},
        )
        recorder.count(
            "repro_kernel_runs_total", 1, labels={"kernel": self.kernel}
        )
        for path, computed in sorted(self.reduction_paths.items()):
            recorder.count(
                "repro_kernel_reductions_total",
                computed,
                labels={"path": path},
            )
        for event, events in (
            ("exact_hit", self.reduction_cache_hits),
            ("prefix_extend", self.reduction_cache_prefix_extends),
            ("miss", self.reduction_cache_misses),
        ):
            recorder.count(
                "repro_kernel_prefix_cache_events_total",
                events,
                labels={"event": event},
            )
        for stage_name, edge_count in (
            ("step2", self.edges_after_step2),
            ("step3", self.edges_after_step3),
            ("step4", self.edges_after_step4),
            ("step6", self.edges_after_step6),
        ):
            recorder.gauge(
                "repro_mine_edges",
                edge_count,
                labels={"stage": stage_name},
            )
        recorder.gauge("repro_mine_jobs", self.jobs)


# ----------------------------------------------------------------------
# Preparation (step 2 extraction) with variant dedup and optional jobs
# ----------------------------------------------------------------------
def _prepare_chunk(
    args: Tuple[bool, List[Execution]],
) -> List[PreparedExecution]:
    """Worker: extract prepared views for a chunk of executions."""
    labelled, executions = args
    if labelled:
        return [
            PreparedExecution(
                vertices=frozenset(execution.labelled_sequence()),
                pairs=execution.labelled_ordered_pair_set(),
                overlaps=execution.labelled_overlapping_pair_set(),
            )
            for execution in executions
        ]
    return [
        PreparedExecution(
            vertices=execution.activities,
            pairs=execution.ordered_pair_set(),
            overlaps=execution.overlapping_pair_set(),
        )
        for execution in executions
    ]


def prepare_executions(
    executions: Sequence[Execution],
    labelled: bool = False,
    jobs: Optional[int] = None,
    recorder: Recorder = NULL_RECORDER,
) -> List[PreparedExecution]:
    """Extract :class:`PreparedExecution` views, once per trace variant.

    Executions with equal :meth:`~repro.logs.execution.Execution.
    variant_key` share one prepared object, so the quadratic pair
    extraction runs once per *distinct* variant.  With ``jobs > 1`` the
    distinct variants are fanned out over worker processes; the returned
    list is aligned with the input order either way.
    """
    jobs = resolve_jobs(jobs)
    keys = [execution.variant_key() for execution in executions]
    index_of_key: Dict[Tuple, int] = {}
    representatives: List[Execution] = []
    for key, execution in zip(keys, executions, strict=True):
        if key not in index_of_key:
            index_of_key[key] = len(representatives)
            representatives.append(execution)
    chunks = [
        (labelled, chunk)
        for chunk in split_chunks(representatives, jobs * 4)
    ]
    prepared: List[PreparedExecution] = []
    for result in process_map_timed(
        _prepare_chunk, chunks, jobs, recorder=recorder, stage="prepare"
    ):
        prepared.extend(result)
    return [prepared[index_of_key[key]] for key in keys]


def prepare_log(
    log: EventLog, jobs: Optional[int] = None
) -> List[PreparedExecution]:
    """Extract :class:`PreparedExecution` views from a log (plain labels)."""
    return prepare_executions(list(log), labelled=False, jobs=jobs)


# ----------------------------------------------------------------------
# Fused packed preparation (dedup + intern + pair extraction in one pass)
# ----------------------------------------------------------------------
def _pack_chunk(
    args: Tuple[Dict[Vertex, int], int, bool, List[Execution]],
) -> List[Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]]:
    """Worker: extract packed ``(vertices, pairs, overlaps)`` per execution.

    Sequential traces (the common case) never touch label tuples at all:
    ordered pairs are produced directly as packed codes from the interned
    id sequence via the suffix-set trick.  Interval-overlapping traces
    fall back to the cached label-level sets and pack them.
    """
    index, size, labelled, executions = args
    out: List[Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]] = []
    for execution in executions:
        sequence: Sequence[Vertex] = (
            execution.labelled_sequence() if labelled
            else execution.sequence
        )
        ids = [index[label] for label in sequence]
        vertices = frozenset(ids)
        if execution.is_sequential():
            pairs: Set[int] = set()
            later: Set[int] = set()
            for vertex_id in reversed(ids):
                if later:
                    base = vertex_id * size
                    pairs.update(base + other for other in later)
                later.add(vertex_id)
            # The suffix pass adds (a, a) when an activity repeats;
            # same-label pairs belong only to the relabelled view.
            pairs.difference_update(
                vertex_id * size + vertex_id for vertex_id in later
            )
            out.append((vertices, frozenset(pairs), frozenset()))
            continue
        if labelled:
            ordered = execution.labelled_ordered_pair_set()
            overlapping = execution.labelled_overlapping_pair_set()
        else:
            ordered = execution.ordered_pair_set()
            overlapping = execution.overlapping_pair_set()
        out.append((
            vertices,
            frozenset(index[u] * size + index[v] for u, v in ordered),
            frozenset(
                index[u] * size + index[v] for u, v in overlapping
            ),
        ))
    return out


def prepare_packed_log(
    executions: Sequence[Execution],
    labelled: bool = False,
    jobs: Optional[int] = None,
    recorder: Recorder = NULL_RECORDER,
) -> Tuple[InternTable, List[PackedVariant]]:
    """Deduplicate, intern and pack executions in one fused pass.

    This is the fast entry into the step 2–6 core used by
    :func:`mine_general_dag` and Algorithm 3: label-level
    :class:`PreparedExecution` objects are never materialized, so the
    quadratic pair extraction produces packed int codes directly.  The
    returned variants are in first-seen order with multiplicities
    summing to ``len(executions)``.
    """
    jobs = resolve_jobs(jobs)
    # Sub-spans let --profile show where prepare time goes: variant
    # dedup ("parse"), label interning ("intern"), pair extraction
    # ("pairs").  They nest inside the caller's mine/prepare span.
    with recorder.span("mine/prepare/parse"):
        keys = [execution.variant_key() for execution in executions]
        multiplicities = Counter(keys)
        seen: Set[Tuple] = set()
        representatives: List[Execution] = []
        representative_keys: List[Tuple] = []
        for key, execution in zip(keys, executions, strict=True):
            if key not in seen:
                seen.add(key)
                representatives.append(execution)
                representative_keys.append(key)

    with recorder.span("mine/prepare/intern"):
        labels: Set[Vertex] = set()
        if labelled:
            for execution in representatives:
                labels.update(execution.labelled_sequence())
        else:
            for execution in representatives:
                labels.update(execution.activities)
        table = InternTable(labels)
        size = max(len(table), 1)

    with recorder.span("mine/prepare/pairs"):
        chunked = [
            (table.index, size, labelled, chunk)
            for chunk in split_chunks(representatives, jobs * 4)
        ]
        packed_sets: List[
            Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]
        ] = []
        for result in process_map_timed(
            _pack_chunk, chunked, jobs, recorder=recorder, stage="prepare"
        ):
            packed_sets.extend(result)
        variants = [
            PackedVariant(
                vertices=vertices,
                pairs=pairs,
                overlaps=overlaps,
                multiplicity=multiplicities[key],
            )
            for (vertices, pairs, overlaps), key in zip(
                packed_sets, representative_keys, strict=True
            )
        ]
    return table, variants


# ----------------------------------------------------------------------
# Steps 2–6 over packed variants
# ----------------------------------------------------------------------
def _reduce_chunk(
    args: Tuple[int, Optional[Dict[int, int]], List[FrozenSet[int]]],
) -> List[FrozenSet[int]]:
    """Worker: transitively reduce a chunk of packed induced edge sets."""
    n, rank, keys = args
    return [
        transitive_reduction_packed(codes, n, rank) for codes in keys
    ]


def _reduce_masks_chunk(
    args: Tuple[str, int, Dict[int, int], Tuple[int, ...], bytes],
) -> List[int]:
    """Worker: batch-reduce a chunk of packed variant vertex masks.

    The parent ships the shared step-4 edge codes and topological ranks
    once per chunk plus the masks as packed little-endian bytes
    (:func:`~repro.core.parallel.pack_masks`); the worker rebuilds the
    :class:`~repro.core.kernels.ReduceContext` locally.  Any worker
    could equally recompute the ranks — the transitive reduction of a
    DAG is unique, so every topological order yields the same kept
    edges — but shipping them keeps chunks byte-deterministic.
    """
    kernel_name, n, rank, edge_codes, blob = args
    ctx = ReduceContext.from_edges(set(edge_codes), n, rank)
    masks = unpack_masks(blob, ctx.slot_bytes)
    kernel = get_kernel(kernel_name)
    return sorted(kernel.bulk_reduce_union(ctx, masks))


def _reverse_code(code: int, n: int) -> int:
    u, v = divmod(code, n)
    return v * n + u


def _topological_ranks(
    edges: Set[int], n: int
) -> Optional[Dict[int, int]]:
    """Topological ranks of the edge-bearing vertices, or ``None`` if
    the packed edge set is cyclic (possible only when step 4 was
    skipped).  Computed once per run so that each step-5 reduction can
    skip its own Kahn pass: a subgraph of a DAG respects any topological
    order of the full DAG."""
    succ: Dict[int, List[int]] = {}
    indegree: Dict[int, int] = {}
    for code in edges:
        u, v = divmod(code, n)
        succ.setdefault(u, []).append(v)
        indegree[v] = indegree.get(v, 0) + 1
        indegree.setdefault(u, 0)
    ready = [u for u, degree in indegree.items() if degree == 0]
    order: List[int] = []
    while ready:
        u = ready.pop()
        order.append(u)
        for v in succ.get(u, ()):
            indegree[v] -= 1
            if indegree[v] == 0:
                ready.append(v)
    if len(order) != len(indegree):
        return None
    return {u: position for position, u in enumerate(order)}


def _ranks_from_adjacency(
    adjacency: Dict[int, List[int]], n: int
) -> Optional[Dict[int, int]]:
    """Kahn ranks straight off an id-list adjacency, or ``None`` on a
    cycle.  Array-indexed counterpart of :func:`_topological_ranks` for
    the fused row pipeline, where the adjacency is already decoded —
    and doubling as its acyclicity test: a completed order proves every
    strongly connected component is a singleton, letting step 4 skip
    the SCC pass outright."""
    indegree = [0] * n
    present = [False] * n
    for u, targets in adjacency.items():
        present[u] = True
        for v in targets:
            indegree[v] += 1
            present[v] = True
    ready = [u for u in range(n) if present[u] and not indegree[u]]
    order: List[int] = []
    adjacency_get = adjacency.get
    while ready:
        u = ready.pop()
        order.append(u)
        for v in adjacency_get(u, ()):
            indegree[v] -= 1
            if not indegree[v]:
                ready.append(v)
    if len(order) != sum(present):
        return None
    return {u: position for position, u in enumerate(order)}


def _total_order_mask(
    variant: PackedVariant,
    n: int,
    cache: Optional[Dict[FrozenSet[int], Optional[int]]] = None,
) -> Optional[int]:
    """The variant's vertex bitmask when its pairs are a total order.

    Returns ``None`` for anything else — only total-order variants may
    take the batched step-5 path, because only for them does the
    induced edge set provably equal ``edges & (S x S)`` (see
    :mod:`repro.core.kernels`).

    The verification is one pass over the pairs: a loopless simple
    digraph on ``S`` with ``C(k, 2)`` edges whose out-degrees are
    pairwise distinct *and* whose in-degrees are pairwise distinct is a
    transitive tournament.  (Distinct out-degrees bounded by ``k - 1``
    summing to ``C(k, 2)`` must be ``{0, …, k-1}``; the out-degree-
    ``k-1`` vertex beats everyone and — having in-degree 0, the only
    value left — is beaten by no one, so removing it recurses.)

    ``cache`` (keyed by the pairs frozenset, which caches its own hash)
    lets repeated ``finish()`` calls skip re-verification.
    """
    if variant.overlaps:
        return None
    pairs = variant.pairs
    vertices = variant.vertices
    k = len(vertices)
    if len(pairs) != (k * (k - 1)) // 2:
        return None
    if cache is not None:
        cached = cache.get(pairs, _UNKNOWN)
        if cached is not _UNKNOWN:
            return cached  # type: ignore[return-value]
    outdeg: Dict[int, int] = {}
    indeg: Dict[int, int] = {}
    result: Optional[int] = None
    for code in pairs:
        u, v = divmod(code, n)
        if u == v:
            break
        outdeg[u] = outdeg.get(u, 0) + 1
        indeg[v] = indeg.get(v, 0) + 1
    else:
        if (
            len(outdeg) == k - 1
            and len(set(outdeg.values())) == k - 1
            and len(indeg) == k - 1
            and len(set(indeg.values())) == k - 1
            and vertices.issuperset(outdeg)
            and vertices.issuperset(indeg)
        ) or k <= 1:
            mask = 0
            for vertex_id in vertices:
                mask |= 1 << vertex_id
            result = mask
    if cache is not None:
        cache[pairs] = result
    return result


def _reduce_masks_parallel(
    kernel: Kernel,
    ctx: ReduceContext,
    edges: Set[int],
    rank: Dict[int, int],
    masks: Sequence[int],
    stats: ReduceStats,
    jobs: int,
    recorder: Recorder,
) -> Set[int]:
    """Fan a large mask batch out over worker processes.

    Masks are deduplicated first (duplicates count as exact cache hits,
    like the serial path) and shipped as packed bytes; each worker runs
    the kernel's batch reduction over its chunk and returns sorted kept
    codes, which union deterministically.
    """
    distinct = list(dict.fromkeys(masks))
    stats.exact_hits += len(masks) - len(distinct)
    stats.misses += len(distinct)
    stats.bump("slotted", len(distinct))
    edge_codes = tuple(sorted(edges))
    chunked = [
        (kernel.name, ctx.n, rank, edge_codes,
         pack_masks(chunk, ctx.slot_bytes))
        for chunk in split_chunks(distinct, jobs)
    ]
    marked: Set[int] = set()
    for kept_codes in process_map_timed(
        _reduce_masks_chunk,
        chunked,
        jobs,
        recorder=recorder,
        stage="step5_reduce",
    ):
        marked.update(kept_codes)
    return marked


def mine_variants(
    variants: Sequence[WeightedVariant],
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    skip_scc_removal: bool = False,
    skip_execution_marking: bool = False,
    jobs: Optional[int] = None,
    kernel: Optional[str] = None,
    kernel_state: Optional[KernelState] = None,
) -> DiGraph:
    """Run steps 2–6 of Algorithm 2 over weighted trace variants.

    This is the interned core shared by :func:`mine_prepared` and the
    incremental miner.  Each ``(prepared, multiplicity)`` entry stands
    for ``multiplicity`` identical executions; the result is identical
    to mining the expanded sequence with the naive reference pipeline.
    """
    variants = [(prepared, int(count)) for prepared, count in variants]
    if not variants:
        raise EmptyLogError("cannot mine an empty set of executions")
    trace = trace if trace is not None else MiningTrace()

    with trace.stage("intern"):
        table, packed = intern_variants(variants)
    return _mine_packed(
        table,
        packed,
        threshold=threshold,
        trace=trace,
        skip_scc_removal=skip_scc_removal,
        skip_execution_marking=skip_execution_marking,
        jobs=jobs,
        kernel=get_kernel(kernel),
        kernel_state=kernel_state,
    )


def _mine_packed(
    table: InternTable,
    packed: Sequence[PackedVariant],
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    skip_scc_removal: bool = False,
    skip_execution_marking: bool = False,
    jobs: Optional[int] = None,
    reduction_memo: Optional[
        Dict[FrozenSet[int], FrozenSet[int]]
    ] = None,
    kernel: Optional[Kernel] = None,
    kernel_state: Optional[KernelState] = None,
) -> DiGraph:
    """Steps 2–6 over already-interned packed variants.

    ``reduction_memo`` optionally persists step-5 results across calls:
    it maps an execution's *induced edge set* to the edges its
    transitive reduction kept.  A reduction depends only on that induced
    set, so a caller whose label table is stable (the incremental miner,
    :meth:`MiningState.finish <repro.core.state.MiningState.finish>`)
    can pass the same dict again and pay only for unseen induced sets.

    Under a mask-capable ``kernel`` (the default ``bitset``) and
    ``threshold <= 1``, total-order variants skip the per-variant scalar
    reduction entirely: they are verified once
    (:func:`_total_order_mask`), collapsed to vertex bitmasks, and
    reduced in one slotted bit-parallel batch — optionally resuming from
    a persistent ``kernel_state`` whose variant population must only
    grow between calls on an unchanged edge set (true for
    :class:`~repro.core.state.MiningState` and the incremental miner).
    Everything else (overlaps, repeated activities, ``threshold > 1``,
    cyclic ablations) takes the scalar path, unchanged.
    """
    if not packed:
        raise EmptyLogError("cannot mine an empty set of executions")
    jobs = resolve_jobs(jobs)
    trace = trace if trace is not None else MiningTrace()
    kernel = kernel if kernel is not None else get_kernel()
    trace.kernel = kernel.name
    trace.execution_count = sum(
        variant.multiplicity for variant in packed
    )
    trace.variant_count = len(packed)
    trace.jobs = jobs
    n = max(len(table), 1)

    # Step 2 — union of ordered pairs, with multiplicity-weighted
    # occurrence counters.
    with trace.stage("step2_counters"):
        code_counts: Counter = Counter()
        overlap_code_counts: Counter = Counter()
        vertex_ids: Set[int] = set()
        for variant in packed:
            vertex_ids |= variant.vertices
            count = variant.multiplicity
            if count == 1:
                code_counts.update(variant.pairs)
                overlap_code_counts.update(variant.overlaps)
            else:
                code_counts.update(dict.fromkeys(variant.pairs, count))
                overlap_code_counts.update(
                    dict.fromkeys(variant.overlaps, count)
                )
        # Label-level counters materialize on demand only: indexing the
        # label tuple directly beats ``table.unpack`` per code, and runs
        # not inspecting Section 6 evidence never pay at all.
        labels = table.labels
        trace.defer_pair_counts(
            _packed_counts_thunk(labels, n, code_counts),
            len(code_counts),
        )
        trace.defer_overlap_counts(
            _packed_counts_thunk(labels, n, overlap_code_counts)
        )
        edges: Set[int] = set(code_counts)
        trace.edges_after_step2 = len(edges)

    with trace.stage("step3_filters"):
        # Section 6 — drop infrequent pairs before the 2-cycle step.
        if threshold > 1:
            edges = {
                code for code in edges if code_counts[code] >= threshold
            }
        trace.edges_dropped_by_threshold = (
            trace.edges_after_step2 - len(edges)
        )

        # Overlap evidence: activities observed running concurrently are
        # independent (Section 2), equivalent to seeing both orders.  The
        # same threshold guards against spuriously overlapping noisy
        # timestamps.
        min_evidence = max(1, threshold)
        independent: Set[int] = set()
        for code, count in overlap_code_counts.items():
            if count >= min_evidence:
                independent.add(code)
                independent.add(_reverse_code(code, n))
        before_overlap = len(edges)
        if independent:
            edges -= independent
        trace.edges_dropped_by_overlap = before_overlap - len(edges)

        # Step 3 — drop 2-cycles.
        edges = {
            code for code in edges if _reverse_code(code, n) not in edges
        }
        trace.edges_after_step3 = len(edges)
        edges_after_step3 = set(edges)

    # Step 4 — drop edges inside strongly connected components of the
    # followings graph (one id-level graph per run, not per execution).
    with trace.stage("step4_scc"):
        if not skip_scc_removal and edges:
            id_graph = DiGraph(nodes=sorted(vertex_ids))
            for code in edges:
                id_graph.add_edge(code // n, code % n)
            mapping = component_map(id_graph)
            doomed = {
                code
                for code in edges
                if mapping[code // n] == mapping[code % n]
            }
            edges -= doomed
            trace.scc_edge_removals = len(doomed)
        trace.edges_after_step4 = len(edges)

    # Steps 5–6 — keep only edges some execution's transitive reduction
    # needs.  Total-order variants batch through the kernel; the rest
    # reduce once per distinct *induced edge set* via the memo.
    with trace.stage("step5_reduce"):
        if not skip_execution_marking:
            # One Kahn pass over the surviving edges serves every
            # induced subgraph; ``None`` (cyclic, only when step 4
            # was skipped) keeps the per-reduction cycle check of
            # the legacy pipeline and disables the batch path.
            rank = _topological_ranks(edges, n)
            stats = ReduceStats()
            marked: Set[int] = set()
            mask_batch: List[int] = []
            scalar_variants: Sequence[PackedVariant] = packed
            if (
                kernel.supports_masks
                and threshold <= 1
                and rank is not None
                and edges
            ):
                mask_cache = (
                    kernel_state.mask_cache_for(n)
                    if kernel_state is not None
                    else None
                )
                scalar_list: List[PackedVariant] = []
                for variant in packed:
                    smask = _total_order_mask(variant, n, mask_cache)
                    if smask is None:
                        scalar_list.append(variant)
                    else:
                        mask_batch.append(smask)
                scalar_variants = scalar_list
            if mask_batch:
                ctx = ReduceContext.from_edges(edges, n, rank or {})
                batch_state = (
                    kernel_state.for_edges(edges, n)
                    if kernel_state is not None
                    else None
                )
                if (
                    jobs > 1
                    and batch_state is None
                    and len(mask_batch) >= _MASK_FANOUT_MIN
                ):
                    marked |= _reduce_masks_parallel(
                        kernel, ctx, edges, rank or {}, mask_batch,
                        stats, jobs, trace.recorder,
                    )
                else:
                    marked |= kernel.reduce_masks(
                        ctx, mask_batch, batch_state, stats
                    )
            seen_keys: Dict[FrozenSet[int], None] = {}
            for variant in scalar_variants:
                induced = variant.pairs & edges
                if induced not in seen_keys:
                    seen_keys[induced] = None
            distinct_keys = list(seen_keys)
            if reduction_memo is None:
                missing = distinct_keys
            else:
                # A reduction depends only on its induced edge set, so
                # memoized keys skip the fan-out entirely; their kept
                # edges fold in below like freshly computed ones.
                missing = []
                for key in distinct_keys:
                    kept = reduction_memo.get(key)
                    if kept is None:
                        missing.append(key)
                    else:
                        marked |= kept
            if missing:
                chunked = [
                    (n, rank, chunk)
                    for chunk in split_chunks(missing, jobs)
                ]
                for (_, _, keys), reduced_chunk in zip(
                    chunked,
                    process_map_timed(
                        _reduce_chunk,
                        chunked,
                        jobs,
                        recorder=trace.recorder,
                        stage="step5_reduce",
                    ),
                    strict=True,
                ):
                    for key, kept in zip(
                        keys, reduced_chunk, strict=True
                    ):
                        if reduction_memo is not None:
                            reduction_memo[key] = kept
                        marked |= kept
                stats.bump("scalar", len(missing))
            trace.reduction_cache_hits = (
                len(scalar_variants) - len(missing) + stats.exact_hits
            )
            trace.reduction_cache_misses = len(missing) + stats.misses
            trace.reduction_cache_prefix_extends = stats.prefix_extends
            trace.reduction_paths = dict(stats.paths)
            edges = marked

    # Materialize the label-level graph.  Node set mirrors the legacy
    # pipeline exactly: every variant vertex, plus the endpoints of the
    # edges that survived step 3 (even if steps 4–6 later pruned them).
    with trace.stage("step6_assemble"):
        node_ids = set(vertex_ids)
        for code in edges_after_step3:
            node_ids.add(code // n)
            node_ids.add(code % n)
        graph = DiGraph(
            nodes=sorted(
                (table.label_of(vertex_id) for vertex_id in node_ids),
                key=repr,
            )
        )
        labels = table.labels
        by_source: Dict[int, List[int]] = {}
        for code in edges:
            u, v = divmod(code, n)
            by_source.setdefault(u, []).append(v)
        for u, targets in by_source.items():
            graph.add_edges_bulk(
                labels[u], [labels[v] for v in targets]
            )
        trace.edges_after_step6 = graph.edge_count
    trace.publish()
    return graph


def _packed_counts_thunk(
    labels: Tuple[Vertex, ...], n: int, code_counts: Counter
) -> Callable[[], Counter]:
    """Deferred label-level view of a packed-code Counter."""

    def materialize() -> Counter:
        return Counter(
            {
                (labels[code // n], labels[code % n]): count
                for code, count in code_counts.items()
            }
        )

    return materialize


def mine_prepared(
    prepared: Sequence[PreparedExecution],
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    skip_scc_removal: bool = False,
    skip_execution_marking: bool = False,
    jobs: Optional[int] = None,
    kernel: Optional[str] = None,
    kernel_state: Optional[KernelState] = None,
) -> DiGraph:
    """Run steps 2–6 of Algorithm 2 over prepared executions.

    Parameters
    ----------
    prepared:
        Per-execution vertex and ordered-pair sets.
    threshold:
        Section 6 noise threshold ``T``; ordered pairs occurring in fewer
        than ``T`` executions are dropped before the 2-cycle step.  ``0``
        (and ``1``) keep everything.
    trace:
        Optional diagnostics sink.
    skip_scc_removal, skip_execution_marking:
        Ablation switches disabling step 4 or steps 5–6; used only by the
        ablation benches, never by the public miners.
    jobs:
        Worker processes for step 5 (``None`` defers to ``REPRO_JOBS``,
        defaulting to serial).
    kernel:
        Mining kernel name (``None`` defers to ``REPRO_KERNEL``, else
        the default ``bitset``); see :mod:`repro.core.kernels`.
    kernel_state:
        Optional persistent step-5 cache for incremental callers.

    Returns
    -------
    DiGraph
        The mined graph over all vertices seen in ``prepared``.
    """
    if not prepared:
        raise EmptyLogError("cannot mine an empty set of executions")
    # Identical prepared executions collapse into weighted variants;
    # PreparedExecution is frozen and hashable, and Counter preserves
    # first-seen order, so the dedup is deterministic.
    variant_counts = Counter(prepared)
    return mine_variants(
        list(variant_counts.items()),
        threshold=threshold,
        trace=trace,
        skip_scc_removal=skip_scc_removal,
        skip_execution_marking=skip_execution_marking,
        jobs=jobs,
        kernel=kernel,
        kernel_state=kernel_state,
    )


# ----------------------------------------------------------------------
# Fused bit-row pipeline (sequential variants under a mask kernel)
# ----------------------------------------------------------------------
def _mine_rows(
    executions: Sequence[Execution],
    trace: MiningTrace,
    kernel: Kernel,
    kernel_state: Optional[KernelState],
) -> DiGraph:
    """Steps 2–6 over bit-rows — the serial fast path of Algorithm 2.

    Requires ``threshold <= 1`` (the caller gates on it).  Instead of
    materializing a pair-code set per variant, step 2 folds every
    sequential no-repeat trace straight into per-source successor
    bitmasks (``rows[u]`` bit ``v`` = pair ``(u, v)`` observed): one
    suffix-mask pass per variant, whose final mask doubles as the
    variant's vertex mask for the batched step 5.  Steps 3–4 are then
    bitmask algebra over ``rows`` and step 5 reduces all those variants
    in one slotted kernel batch.  Traces the bit representation cannot
    express (repeated activities, interval overlaps) are packed the
    classic way and reduced scalar — mixed logs take both paths, with
    identical results to the reference pipeline either way.

    Label-level ``pair_counts`` are deferred: the thunk re-derives them
    from the retained id sequences only when Section 6 evidence is
    actually inspected.
    """
    with trace.stage("prepare"):
        recorder = trace.recorder
        with recorder.span("mine/prepare/parse"):
            keys = [execution.variant_key() for execution in executions]
            multiplicities = Counter(keys)
            seen: Set[Tuple] = set()
            representatives: List[Execution] = []
            representative_keys: List[Tuple] = []
            for key, execution in zip(keys, executions, strict=True):
                if key not in seen:
                    seen.add(key)
                    representatives.append(execution)
                    representative_keys.append(key)
        with recorder.span("mine/prepare/intern"):
            label_set: Set[Vertex] = set()
            for execution in representatives:
                label_set.update(execution.activities)
            table = InternTable(label_set)
            n = max(len(table), 1)
            index = table.index
        # (ids, multiplicity) per sequential no-repeat variant;
        # everything else packs into classic PackedVariants.
        mask_variants: List[Tuple[List[int], int]] = []
        fallback: List[PackedVariant] = []
        with recorder.span("mine/prepare/pairs"):
            for execution, key in zip(
                representatives, representative_keys, strict=True
            ):
                ids = [index[label] for label in execution.sequence]
                count = multiplicities[key]
                if execution.is_sequential():
                    if len(ids) == len(frozenset(ids)):
                        mask_variants.append((ids, count))
                        continue
                    # Sequential with repeats: suffix-set extraction
                    # minus the same-label pairs, like _pack_chunk.
                    pair_codes: Set[int] = set()
                    later: Set[int] = set()
                    for vertex_id in reversed(ids):
                        if later:
                            base = vertex_id * n
                            pair_codes.update(
                                base + other for other in later
                            )
                        later.add(vertex_id)
                    pair_codes.difference_update(
                        vertex_id * n + vertex_id for vertex_id in later
                    )
                    fallback.append(
                        PackedVariant(
                            vertices=frozenset(ids),
                            pairs=frozenset(pair_codes),
                            overlaps=frozenset(),
                            multiplicity=count,
                        )
                    )
                else:
                    ordered = execution.ordered_pair_set()
                    overlapping = execution.overlapping_pair_set()
                    fallback.append(
                        PackedVariant(
                            vertices=frozenset(ids),
                            pairs=frozenset(
                                index[u] * n + index[v]
                                for u, v in ordered
                            ),
                            overlaps=frozenset(
                                index[u] * n + index[v]
                                for u, v in overlapping
                            ),
                            multiplicity=count,
                        )
                    )
    trace.execution_count = len(executions)
    trace.variant_count = len(representatives)
    trace.jobs = 1

    # Step 2 — successor bitmask per source vertex, one suffix pass per
    # variant; the pass's final mask is the variant's vertex mask.
    with trace.stage("step2_counters"):
        rows = [0] * n
        one = [1 << i for i in range(n)]
        smasks: List[int] = []
        vertex_mask = 0
        for ids, _ in mask_variants:
            m = 0
            for vertex_id in reversed(ids):
                rows[vertex_id] |= m
                m |= one[vertex_id]
            smasks.append(m)
            vertex_mask |= m
        overlap_code_counts: Counter = Counter()
        for variant in fallback:
            for code in variant.pairs:
                rows[code // n] |= one[code % n]
            if variant.overlaps:
                if variant.multiplicity == 1:
                    overlap_code_counts.update(variant.overlaps)
                else:
                    overlap_code_counts.update(
                        dict.fromkeys(
                            variant.overlaps, variant.multiplicity
                        )
                    )
            for vertex_id in variant.vertices:
                vertex_mask |= one[vertex_id]
        trace.edges_after_step2 = sum(
            row.bit_count() for row in rows
        )
        labels = table.labels
        trace.defer_pair_counts(
            _row_pair_counts_thunk(labels, n, mask_variants, fallback),
            trace.edges_after_step2,
        )
        trace.defer_overlap_counts(
            _packed_counts_thunk(labels, n, overlap_code_counts)
        )

    # Step 3 — overlap independence, then 2-cycles, in bit space.
    with trace.stage("step3_filters"):
        trace.edges_dropped_by_threshold = 0  # caller gates T <= 1
        dropped_overlap = 0
        for code in overlap_code_counts:
            u, v = divmod(code, n)
            if (rows[u] >> v) & 1:
                rows[u] ^= one[v]
                dropped_overlap += 1
            if (rows[v] >> u) & 1:
                rows[v] ^= one[u]
                dropped_overlap += 1
        trace.edges_dropped_by_overlap = dropped_overlap
        cols = [0] * n
        for u in range(n):
            row = rows[u]
            while row:
                bit = row & -row
                row ^= bit
                cols[bit.bit_length() - 1] |= one[u]
        erows = [rows[u] & ~cols[u] for u in range(n)]
        trace.edges_after_step3 = sum(
            row.bit_count() for row in erows
        )
        erows3 = list(erows)

    # Step 4 — SCC collapse over the interned adjacency (no DiGraph).
    # The Kahn pass runs first: completing it proves the graph acyclic
    # (every component a singleton), so the common case skips Tarjan
    # altogether, and its ranks are exactly what step 5 needs.  A warm
    # kernel state keyed on the step-3 rows replays the whole step from
    # its cache — the rows determine the step-4 output byte for byte.
    with trace.stage("step4_scc"):
        batch_state = (
            kernel_state.for_step3_rows(erows3, n)
            if kernel_state is not None
            else None
        )
        cached_step4 = (
            batch_state.step4_cache if batch_state is not None else None
        )
        if cached_step4 is not None:
            erows, adjacency, rank, removed = cached_step4
        else:
            adjacency = {}
            for u in range(n):
                row = erows[u]
                if not row:
                    continue
                targets: List[int] = []
                while row:
                    bit = row & -row
                    row ^= bit
                    targets.append(bit.bit_length() - 1)
                adjacency[u] = targets
            removed = 0
            rank = (
                _ranks_from_adjacency(adjacency, n) if adjacency else {}
            )
            if rank is None:
                mapping = component_map_adjacency(adjacency)
                for u, targets in list(adjacency.items()):
                    component = mapping[u]
                    kept = [
                        v for v in targets if mapping[v] != component
                    ]
                    if len(kept) != len(targets):
                        removed += len(targets) - len(kept)
                        mask = 0
                        for v in kept:
                            mask |= one[v]
                        erows[u] = mask
                        if kept:
                            adjacency[u] = kept
                        else:
                            del adjacency[u]
                # Cross-component edges condense to a DAG, so this
                # second pass always succeeds.
                rank = _ranks_from_adjacency(adjacency, n) or {}
            if batch_state is not None:
                batch_state.step4_cache = (
                    erows, adjacency, rank, removed
                )
        trace.scc_edge_removals = removed
        trace.edges_after_step4 = sum(
            row.bit_count() for row in erows
        )

    # Step 5 — one slotted batch over every mask variant; scalar
    # reductions (with a per-run induced-set memo) for the rest.  The
    # context comes straight from the step-4 rows (no edge re-decode)
    # and is only built when something actually needs reducing: a warm
    # kernel state that already covers every mask answers from its
    # cached union without touching the adjacency again.
    with trace.stage("step5_reduce"):
        stats = ReduceStats()
        marked: Set[int] = set()
        if adjacency:
            if smasks:
                warm = batch_state is not None and all(
                    smask in batch_state.seen_masks for smask in smasks
                )
                if warm:
                    stats.exact_hits += len(smasks)
                    marked |= batch_state.marked_union
                else:
                    ctx = ReduceContext.from_rows(
                        erows,
                        adjacency,
                        n,
                        rank,
                        with_pred=batch_state is not None,
                    )
                    marked |= kernel.reduce_masks(
                        ctx, smasks, batch_state, stats
                    )
            if fallback:
                edge_codes: Set[int] = set()
                for u, targets in adjacency.items():
                    base = u * n
                    edge_codes.update(base + v for v in targets)
                memo: Dict[FrozenSet[int], FrozenSet[int]] = {}
                for variant in fallback:
                    induced = variant.pairs & edge_codes
                    kept = memo.get(induced)
                    if kept is None:
                        kept = transitive_reduction_packed(
                            induced, n, rank
                        )
                        memo[induced] = kept
                        stats.misses += 1
                        stats.bump("scalar")
                    else:
                        stats.exact_hits += 1
                    marked |= kept
        trace.reduction_cache_hits = stats.exact_hits
        trace.reduction_cache_misses = stats.misses
        trace.reduction_cache_prefix_extends = stats.prefix_extends
        trace.reduction_paths = dict(stats.paths)

    # Step 6 — assemble the label graph; nodes mirror the legacy
    # pipeline (variant vertices plus step-3 edge endpoints).
    with trace.stage("step6_assemble"):
        node_mask = vertex_mask
        for u in range(n):
            if erows3[u]:
                node_mask |= one[u]
                node_mask |= erows3[u]
        node_ids: List[int] = []
        m = node_mask
        while m:
            bit = m & -m
            m ^= bit
            node_ids.append(bit.bit_length() - 1)
        labels = table.labels
        graph = DiGraph(
            nodes=sorted(
                (labels[vertex_id] for vertex_id in node_ids), key=repr
            )
        )
        by_source: Dict[int, List[int]] = {}
        for code in marked:
            u, v = divmod(code, n)
            by_source.setdefault(u, []).append(v)
        for u, targets in by_source.items():
            graph.add_edges_bulk(
                labels[u], [labels[v] for v in targets]
            )
        trace.edges_after_step6 = graph.edge_count
    trace.publish()
    return graph


def _row_pair_counts_thunk(
    labels: Tuple[Vertex, ...],
    n: int,
    mask_variants: Sequence[Tuple[List[int], int]],
    fallback: Sequence[PackedVariant],
) -> Callable[[], Counter]:
    """Deferred label-level pair counters for the fused row pipeline.

    Mask variants re-derive their pairs from the retained id sequences
    (every ``(ids[i], ids[j])`` with ``i < j`` — they are sequential and
    repeat-free by construction); fallback variants contribute their
    packed pair codes.  Matches the eager reference counters exactly.
    """

    def materialize() -> Counter:
        counts: Counter = Counter()
        for ids, count in mask_variants:
            for i, u in enumerate(ids):
                label_u = labels[u]
                for v in ids[i + 1:]:
                    counts[(label_u, labels[v])] += count
        for variant in fallback:
            count = variant.multiplicity
            for code in variant.pairs:
                counts[(labels[code // n], labels[code % n])] += count
        return counts

    return materialize


def mine_general_dag(
    log: EventLog,
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    jobs: Optional[int] = None,
    kernel: Optional[str] = None,
    kernel_state: Optional[KernelState] = None,
) -> DiGraph:
    """Mine a conformal graph of ``log`` with Algorithm 2.

    Parameters
    ----------
    log:
        Executions of one (acyclic) process; activities may be optional.
    threshold:
        Section 6 noise threshold ``T`` (0 disables noise handling).
    trace:
        Optional :class:`MiningTrace` capturing per-stage diagnostics.
    jobs:
        Worker processes for pair extraction and step-5 marking
        (``None`` defers to ``REPRO_JOBS``; 1 = serial).
    kernel:
        Mining kernel name — ``pure``, ``bitset`` or ``numpy``
        (``None`` defers to ``REPRO_KERNEL``, else ``bitset``).  Every
        kernel produces identical graphs; see
        :mod:`repro.core.kernels` and ``docs/PERFORMANCE.md``.
    kernel_state:
        Optional persistent step-5 cache for repeated mining of a
        growing log (see :class:`~repro.core.kernels.KernelState`).

    Returns
    -------
    DiGraph
        A conformal graph (Theorem 5) over the log's activities.

    Examples
    --------
    Example 7 of the paper — log ``{ABCF, ACDF, ADEF, AECF}``; C, D and E
    form one strongly connected component of followings, hence are mutually
    independent:

    >>> from repro.logs.event_log import EventLog
    >>> log = EventLog.from_sequences(["ABCF", "ACDF", "ADEF", "AECF"])
    >>> sorted(mine_general_dag(log).edges())
    ... # doctest: +NORMALIZE_WHITESPACE
    [('A', 'B'), ('A', 'C'), ('A', 'D'), ('A', 'E'),
     ('B', 'C'), ('C', 'F'), ('D', 'F'), ('E', 'F')]
    """
    log.require_non_empty()
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    trace = trace if trace is not None else MiningTrace()
    resolved_kernel = get_kernel(kernel)
    trace.kernel = resolved_kernel.name
    executions = list(log)
    if (
        resolved_kernel.supports_masks
        and threshold <= 1
        and resolve_jobs(jobs) == 1
    ):
        return _mine_rows(
            executions, trace, resolved_kernel, kernel_state
        )
    with trace.stage("prepare"):
        table, variants = prepare_packed_log(
            executions,
            labelled=False,
            jobs=jobs,
            recorder=trace.recorder,
        )
    return _mine_packed(
        table,
        variants,
        threshold=threshold,
        trace=trace,
        jobs=jobs,
        kernel=resolved_kernel,
        kernel_state=kernel_state,
    )


def presence_by_vertex(
    prepared: Sequence[PreparedExecution],
) -> Dict[Vertex, int]:
    """Count, per vertex, how many prepared executions contain it."""
    counts: Counter = Counter()
    for execution in prepared:
        counts.update(execution.vertices)
    return dict(counts)
