"""Retained naive reference implementation of the mining pipeline.

This module preserves, essentially verbatim, the original label-tuple
implementation of Algorithm 2's steps 2–6 that predated the interned
high-throughput core in :mod:`repro.core.general_dag`: generator-based
pair extraction per execution, label-tuple set algebra, and a fresh
:class:`~repro.graphs.digraph.DiGraph` plus dictionary-based transitive
reduction per execution in step 5.

It exists for two reasons:

* the differential test suite asserts that the fast interned/variant/
  parallel paths produce graphs, traces and noise counters *identical*
  to this reference on arbitrary logs, and
* the performance harness (``benchmarks/perf_harness.py``) measures the
  fast core's speedup against it honestly — same satellites, old
  architecture.

Nothing in the production code path imports this module.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Set

from repro.core.cyclic import merge_instances
from repro.core.followings import remove_two_cycles
from repro.core.general_dag import (
    MiningTrace,
    Pair,
    PreparedExecution,
    Vertex,
)
from repro.errors import EmptyLogError
from repro.graphs.digraph import DiGraph
from repro.graphs.scc import remove_intra_component_edges
from repro.graphs.traversal import topological_sort
from repro.logs.event_log import EventLog


def prepare_log_reference(log: EventLog) -> List[PreparedExecution]:
    """Per-execution preparation, one generator pass per execution
    (no variant deduplication, no caching)."""
    return [
        PreparedExecution(
            vertices=frozenset(execution.activities),
            pairs=frozenset(execution.ordered_pairs()),
            overlaps=frozenset(execution.overlapping_pairs()),
        )
        for execution in log
    ]


def prepare_labelled_log_reference(
    log: EventLog,
) -> List[PreparedExecution]:
    """Relabelled (Algorithm 3) preparation, one pass per execution."""
    return [
        PreparedExecution(
            vertices=frozenset(execution.labelled_sequence()),
            pairs=frozenset(execution.labelled_ordered_pairs()),
            overlaps=frozenset(execution.labelled_overlapping_pairs()),
        )
        for execution in log
    ]


def _reduction_edges_reference(graph: DiGraph) -> Set[Pair]:
    """The original DiGraph-based Algorithm 4 transitive reduction."""
    index: Dict[Vertex, int] = {n: i for i, n in enumerate(graph.nodes())}
    desc: Dict[Vertex, int] = {}
    kept: Set[Pair] = set()
    for node in reversed(topological_sort(graph)):
        successors = graph.successors(node)
        through = 0
        for child in successors:
            through |= desc[child]
        mask = through
        for child in successors:
            bit = 1 << index[child]
            if not through & bit:
                kept.add((node, child))
            mask |= bit
        desc[node] = mask
    return kept


def mine_prepared_reference(
    prepared: Sequence[PreparedExecution],
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    skip_scc_removal: bool = False,
    skip_execution_marking: bool = False,
) -> DiGraph:
    """Steps 2–6 over label tuples, one induced DiGraph per execution."""
    if not prepared:
        raise EmptyLogError("cannot mine an empty set of executions")
    trace = trace if trace is not None else MiningTrace()

    # Step 2 — union of ordered pairs, with occurrence counters.
    counts: Counter = Counter()
    overlap_counts: Counter = Counter()
    vertices: Set[Vertex] = set()
    for execution in prepared:
        vertices |= execution.vertices
        counts.update(execution.pairs)
        overlap_counts.update(execution.overlaps)
    trace.pair_counts = counts
    trace.overlap_counts = overlap_counts
    edges: Set[Pair] = set(counts)
    trace.edges_after_step2 = len(edges)

    # Section 6 — drop infrequent pairs before the 2-cycle step.
    if threshold > 1:
        edges = {pair for pair in edges if counts[pair] >= threshold}
    trace.edges_dropped_by_threshold = trace.edges_after_step2 - len(edges)

    # Overlap evidence: concurrently observed activities are independent.
    min_evidence = max(1, threshold)
    independent = {
        pair
        for pair, count in overlap_counts.items()
        if count >= min_evidence
    }
    before_overlap = len(edges)
    if independent:
        edges = {
            (u, v)
            for u, v in edges
            if (u, v) not in independent and (v, u) not in independent
        }
    trace.edges_dropped_by_overlap = before_overlap - len(edges)

    # Step 3 — drop 2-cycles.
    edges = remove_two_cycles(edges)
    trace.edges_after_step3 = len(edges)

    graph = DiGraph(nodes=sorted(vertices, key=repr), edges=edges)

    # Step 4 — drop edges inside strongly connected components.
    if not skip_scc_removal:
        trace.scc_edge_removals = remove_intra_component_edges(graph)
    trace.edges_after_step4 = graph.edge_count

    # Steps 5–6 — keep only edges some execution's reduction needs.
    if not skip_execution_marking:
        marked: Set[Pair] = set()
        edge_set = graph.edge_set()
        for execution in prepared:
            induced_edges = execution.pairs & edge_set
            induced = DiGraph(
                nodes=execution.vertices, edges=induced_edges
            )
            marked |= _reduction_edges_reference(induced)
        graph = graph.edge_subgraph(marked)
    trace.edges_after_step6 = graph.edge_count
    return graph


def mine_general_dag_reference(
    log: EventLog,
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
) -> DiGraph:
    """Algorithm 2 through the naive pipeline."""
    log.require_non_empty()
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    return mine_prepared_reference(
        prepare_log_reference(log), threshold=threshold, trace=trace
    )


def mine_cyclic_reference(
    log: EventLog,
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
) -> DiGraph:
    """Algorithm 3 through the naive pipeline."""
    log.require_non_empty()
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    instance_graph = mine_prepared_reference(
        prepare_labelled_log_reference(log),
        threshold=threshold,
        trace=trace,
    )
    return merge_instances(instance_graph)
