"""Incremental (streaming) mining.

The paper emphasizes that Algorithm 1 runs "in one pass over the log",
and its motivating deployment — Flowmark recording executions as users
perform them — is inherently incremental: executions arrive one at a
time over weeks.  :class:`IncrementalMiner` supports that deployment: it
maintains the sufficient statistics of steps 2–4 (ordered-pair counts,
overlap counts, deduplicated trace variants with multiplicities) as
executions stream in, and materializes the current mined graph on
demand through the weighted variant core
(:func:`~repro.core.general_dag.mine_variants`).

The streaming state is exactly what the batch pipeline consumes, so the
result is *identical* to re-running :func:`~repro.core.general_dag.
mine_general_dag` (or :func:`~repro.core.cyclic.mine_cyclic`) on all
executions seen so far — a property the test suite asserts.

Besides ``graph()``, the miner exposes ``stability()``: the number of
consecutive executions that have not changed the mined edge set, which a
deployment can use as a convergence signal ("the log now captures the
process").
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import Counter
from pathlib import Path
from typing import Optional, Union

from repro.core.cyclic import merge_instances
from repro.core.general_dag import (
    MiningTrace,
    PreparedExecution,
    mine_variants,
)
from repro.core.interning import intern_variants
from repro.errors import CheckpointError, EmptyLogError
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.obs.recorder import Recorder, resolve_recorder

MODE_GENERAL = "general-dag"
MODE_CYCLIC = "cyclic"

_MODES = (MODE_GENERAL, MODE_CYCLIC)

CHECKPOINT_FORMAT = "repro-incremental-checkpoint"
#: Current checkpoint version.  v1 stored one JSON entry per execution
#: with label-level pair lists; v2 deduplicates into weighted trace
#: variants and carries the interning table, storing pairs as packed
#: ``u_id * n + v_id`` codes.  :meth:`IncrementalMiner.resume` reads
#: both.
CHECKPOINT_VERSION = 2

PathOrStr = Union[str, Path]


def _vertex_to_json(vertex):
    # Vertices are activity names (str) in general mode and labelled
    # instances ``(activity, occurrence)`` in cyclic mode.
    if isinstance(vertex, tuple):
        return [vertex[0], vertex[1]]
    return vertex


def _vertex_from_json(value):
    if isinstance(value, list):
        if len(value) != 2:
            raise CheckpointError(f"bad labelled vertex {value!r}")
        return (str(value[0]), int(value[1]))
    return value


def _pairs_to_json(pairs):
    return sorted(
        [[_vertex_to_json(u), _vertex_to_json(v)] for u, v in pairs]
    )


def _pairs_from_json(values):
    return frozenset(
        (_vertex_from_json(u), _vertex_from_json(v)) for u, v in values
    )


class IncrementalMiner:
    """Mine a growing log one execution at a time.

    Parameters
    ----------
    mode:
        ``"general-dag"`` (Algorithm 2 semantics, default) or
        ``"cyclic"`` (Algorithm 3 — executions are instance-relabelled
        and the mined instance graph is merged per query).
    threshold:
        Section 6 noise threshold applied at every materialization.
    recorder:
        Optional :mod:`repro.obs` recorder; materializations run under
        it and :meth:`checkpoint`/:meth:`resume` record the
        ``repro_checkpoint_*`` gauges (size, variants, age).

    Examples
    --------
    >>> miner = IncrementalMiner()
    >>> miner.add_sequence("ABCF")
    >>> miner.add_sequence("ACDF")
    >>> miner.execution_count
    2
    >>> miner.graph().has_edge("A", "B")
    True
    """

    def __init__(
        self,
        mode: str = MODE_GENERAL,
        threshold: int = 0,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.mode = mode
        self.threshold = threshold
        self.recorder: Recorder = resolve_recorder(recorder)
        # Identical prepared executions collapse into one weighted
        # variant (Counter preserves first-seen order), so long streams
        # dominated by repeated traces stay cheap to re-mine.
        self._variants: Counter = Counter()
        self._execution_count = 0
        self._last_edges: Optional[frozenset] = None
        self._stable_since = 0
        self._dirty = True
        self._cached_graph: Optional[DiGraph] = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, execution: Execution) -> None:
        """Ingest one execution."""
        if self.mode == MODE_CYCLIC:
            prepared = PreparedExecution(
                vertices=frozenset(execution.labelled_sequence()),
                pairs=execution.labelled_ordered_pair_set(),
                overlaps=execution.labelled_overlapping_pair_set(),
            )
        else:
            prepared = PreparedExecution(
                vertices=execution.activities,
                pairs=execution.ordered_pair_set(),
                overlaps=execution.overlapping_pair_set(),
            )
        self._variants[prepared] += 1
        self._execution_count += 1
        self._dirty = True

    def add_sequence(self, activities, execution_id: str = "") -> None:
        """Ingest one execution given as an activity sequence."""
        execution_id = (
            execution_id or f"stream-{self._execution_count:06d}"
        )
        self.add(
            Execution.from_sequence(
                list(activities), execution_id=execution_id
            )
        )

    def add_log(self, log: EventLog) -> None:
        """Ingest every execution of an existing log."""
        for execution in log:
            self.add(execution)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    @property
    def execution_count(self) -> int:
        """Number of executions ingested so far."""
        return self._execution_count

    @property
    def variant_count(self) -> int:
        """Number of distinct trace variants ingested so far."""
        return len(self._variants)

    def graph(self, trace: Optional[MiningTrace] = None) -> DiGraph:
        """Materialize the mined graph over everything seen so far.

        Identical to running the batch miner on the accumulated log.
        Raises :class:`EmptyLogError` before the first execution.
        """
        if not self._variants:
            raise EmptyLogError("no executions ingested yet")
        if not self._dirty and self._cached_graph is not None and (
            trace is None
        ):
            return self._cached_graph.copy()
        if trace is None:
            trace = MiningTrace(recorder=self.recorder)
        with self.recorder.span("incremental/materialize"):
            mined = mine_variants(
                list(self._variants.items()),
                threshold=self.threshold,
                trace=trace,
            )
            if self.mode == MODE_CYCLIC:
                mined = merge_instances(mined)
        edges = frozenset(mined.edge_set())
        if edges == self._last_edges:
            self._stable_since += 1
        else:
            self._stable_since = 0
            self._last_edges = edges
        self._dirty = False
        self._cached_graph = mined
        return mined.copy()

    def stability(self) -> int:
        """Consecutive ``graph()`` materializations with an unchanged
        edge set — a convergence signal for deployments that poll."""
        return self._stable_since

    def has_converged(self, window: int = 10) -> bool:
        """Whether the mined edge set survived ``window`` consecutive
        materializations unchanged."""
        return self._stable_since >= window

    def reset(self) -> None:
        """Discard all ingested executions and cached state."""
        self._variants.clear()
        self._execution_count = 0
        self._last_edges = None
        self._stable_since = 0
        self._dirty = True
        self._cached_graph = None

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, path: PathOrStr) -> None:
        """Write the miner's sufficient statistics to ``path``, atomically.

        The checkpoint is a JSON document (format version 2) holding the
        interning table and the deduplicated trace variants — vertex ids
        and packed ``u_id * n + v_id`` pair codes with multiplicities —
        plus the stability counter: everything needed to make
        :meth:`resume` followed by further ``add`` calls
        indistinguishable from one uninterrupted miner.  The file is
        written to a temporary sibling and moved into place with
        :func:`os.replace`, so a crash mid-write never leaves a partial
        checkpoint behind.
        """
        path = Path(path)
        with self.recorder.span("incremental/checkpoint"):
            self._write_checkpoint(path)
        stat = path.stat()
        self.recorder.gauge("repro_checkpoint_bytes", stat.st_size)
        self.recorder.gauge(
            "repro_checkpoint_variants", len(self._variants)
        )
        self.recorder.gauge(
            "repro_checkpoint_executions", self._execution_count
        )

    def _write_checkpoint(self, path: Path) -> None:
        table, packed = intern_variants(list(self._variants.items()))
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "mode": self.mode,
            "threshold": self.threshold,
            "labels": [_vertex_to_json(label) for label in table.labels],
            "variants": [
                {
                    "vertices": sorted(variant.vertices),
                    "pairs": sorted(variant.pairs),
                    "overlaps": sorted(variant.overlaps),
                    "count": variant.multiplicity,
                }
                for variant in packed
            ],
            "execution_count": self._execution_count,
            "last_edges": (
                _pairs_to_json(self._last_edges)
                if self._last_edges is not None
                else None
            ),
            "stable_since": self._stable_since,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent or Path("."),
            prefix=path.name + ".",
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def resume(
        cls,
        path: PathOrStr,
        recorder: Optional[Recorder] = None,
    ) -> "IncrementalMiner":
        """Reconstruct a miner from a :meth:`checkpoint` file.

        With a recorder, the checkpoint's size and age (seconds since
        its last modification — how stale the resumed state is) are
        recorded as ``repro_checkpoint_bytes`` /
        ``repro_checkpoint_age_seconds`` gauges.

        Raises
        ------
        CheckpointError
            When the file is not a checkpoint, is corrupt, or has an
            incompatible version.
        """
        obs = resolve_recorder(recorder)
        try:
            stat = os.stat(path)
            obs.gauge("repro_checkpoint_bytes", stat.st_size)
            obs.gauge(
                "repro_checkpoint_age_seconds",
                max(time.time() - stat.st_mtime, 0.0),
            )
        except OSError:
            pass  # the open() below reports unreadable paths properly
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path!s}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get(
            "format"
        ) != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{path!s} is not an incremental-miner checkpoint"
            )
        version = payload.get("version")
        if version not in (1, 2):
            raise CheckpointError(
                f"unsupported checkpoint version {version!r}"
            )
        try:
            miner = cls(
                mode=payload["mode"],
                threshold=payload["threshold"],
                recorder=recorder,
            )
            if version == 1:
                cls._load_v1_executions(miner, payload["executions"])
            else:
                cls._load_v2_variants(
                    miner, payload["labels"], payload["variants"]
                )
                miner._execution_count = int(payload["execution_count"])
            last_edges = payload["last_edges"]
            miner._last_edges = (
                _pairs_from_json(last_edges)
                if last_edges is not None
                else None
            )
            miner._stable_since = int(payload["stable_since"])
        except (
            KeyError,
            TypeError,
            ValueError,
            IndexError,
            ZeroDivisionError,
        ) as exc:
            raise CheckpointError(
                f"corrupt checkpoint {path!s}: {exc}"
            ) from exc
        return miner

    @staticmethod
    def _load_v1_executions(miner: "IncrementalMiner", entries) -> None:
        """Ingest v1's one-entry-per-execution label-level payload."""
        for entry in entries:
            prepared = PreparedExecution(
                vertices=frozenset(
                    _vertex_from_json(v) for v in entry["vertices"]
                ),
                pairs=_pairs_from_json(entry["pairs"]),
                overlaps=_pairs_from_json(entry["overlaps"]),
            )
            miner._variants[prepared] += 1
            miner._execution_count += 1

    @staticmethod
    def _load_v2_variants(
        miner: "IncrementalMiner", labels, entries
    ) -> None:
        """Ingest v2's interning table + packed weighted variants."""
        table = [_vertex_from_json(label) for label in labels]
        n = len(table)

        def unpack_codes(codes):
            return frozenset(
                (table[int(code) // n], table[int(code) % n])
                for code in codes
            )

        for entry in entries:
            count = int(entry["count"])
            if count < 1:
                raise CheckpointError(
                    f"bad variant multiplicity {entry['count']!r}"
                )
            prepared = PreparedExecution(
                vertices=frozenset(
                    table[int(v)] for v in entry["vertices"]
                ),
                pairs=unpack_codes(entry["pairs"]),
                overlaps=unpack_codes(entry["overlaps"]),
            )
            miner._variants[prepared] += count
