"""Incremental (streaming) mining.

The paper emphasizes that Algorithm 1 runs "in one pass over the log",
and its motivating deployment — Flowmark recording executions as users
perform them — is inherently incremental: executions arrive one at a
time over weeks.  :class:`IncrementalMiner` supports that deployment: it
maintains a :class:`~repro.core.state.MiningState` (the mergeable
sufficient statistics of steps 2–4: ordered-pair counts, overlap
counts, deduplicated trace variants with multiplicities) as executions
stream in, and materializes the current mined graph on demand through
:meth:`MiningState.finish <repro.core.state.MiningState.finish>`.

The streaming state is exactly what the batch pipeline consumes, so the
result is *identical* to re-running :func:`~repro.core.general_dag.
mine_general_dag` (or :func:`~repro.core.cyclic.mine_cyclic`) on all
executions seen so far — a property the test suite asserts.  Because
the state is mergeable, checkpoints written by this miner are also
valid shard states for the CLI's ``merge-states`` command, and vice
versa.

Besides ``graph()``, the miner exposes ``stability()``: the number of
consecutive executions that have not changed the mined edge set, which a
deployment can use as a convergence signal ("the log now captures the
process").
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.core.cyclic import merge_instances
from repro.core.general_dag import MiningTrace
from repro.core.state import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    MODE_CYCLIC,
    MODE_GENERAL,
    MiningState,
    load_state_with_fallback,
    save_state,
)
from repro.errors import EmptyLogError
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution
from repro.obs.recorder import Recorder, resolve_recorder
from repro.resilience.faults import now

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "MODE_CYCLIC",
    "MODE_GENERAL",
    "IncrementalMiner",
]

_MODES = (MODE_GENERAL, MODE_CYCLIC)

PathOrStr = Union[str, Path]


class IncrementalMiner:
    """Mine a growing log one execution at a time.

    Parameters
    ----------
    mode:
        ``"general-dag"`` (Algorithm 2 semantics, default) or
        ``"cyclic"`` (Algorithm 3 — executions are instance-relabelled
        and the mined instance graph is merged per query).
    threshold:
        Section 6 noise threshold applied at every materialization.
    recorder:
        Optional :mod:`repro.obs` recorder; materializations run under
        it and :meth:`checkpoint`/:meth:`resume` record the
        ``repro_checkpoint_*`` gauges (size, variants, age).

    Examples
    --------
    >>> miner = IncrementalMiner()
    >>> miner.add_sequence("ABCF")
    >>> miner.add_sequence("ACDF")
    >>> miner.execution_count
    2
    >>> miner.graph().has_edge("A", "B")
    True
    """

    def __init__(
        self,
        mode: str = MODE_GENERAL,
        threshold: int = 0,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.mode = mode
        self.threshold = threshold
        self.recorder: Recorder = resolve_recorder(recorder)
        self._state = MiningState(labelled=(mode == MODE_CYCLIC))
        self._last_edges: Optional[frozenset] = None
        self._stable_since = 0
        self._dirty = True
        self._cached_graph: Optional[DiGraph] = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, execution: Execution) -> None:
        """Ingest one execution."""
        self._state.update(execution)
        self._dirty = True

    def add_sequence(
        self, activities: Iterable[str], execution_id: str = ""
    ) -> None:
        """Ingest one execution given as an activity sequence."""
        execution_id = (
            execution_id or f"stream-{self.execution_count:06d}"
        )
        self.add(
            Execution.from_sequence(
                list(activities), execution_id=execution_id
            )
        )

    def add_log(self, log: EventLog) -> None:
        """Ingest every execution of an existing log."""
        for execution in log:
            self.add(execution)

    def absorb(self, state: MiningState) -> None:
        """Merge a shard's :class:`MiningState` into this miner.

        The shard must match the miner's mode (labelled for cyclic,
        plain for general-dag).  Afterwards the miner behaves as if it
        had ingested the shard's executions itself.
        """
        self._state.merge(state)
        self._dirty = True

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    @property
    def execution_count(self) -> int:
        """Number of executions ingested so far."""
        return self._state.execution_count

    @property
    def variant_count(self) -> int:
        """Number of distinct trace variants ingested so far."""
        return self._state.variant_count

    @property
    def state(self) -> MiningState:
        """The miner's live mining state (treat as read-only)."""
        return self._state

    def graph(self, trace: Optional[MiningTrace] = None) -> DiGraph:
        """Materialize the mined graph over everything seen so far.

        Identical to running the batch miner on the accumulated log.
        Raises :class:`EmptyLogError` before the first execution.
        """
        if self._state.execution_count == 0:
            raise EmptyLogError("no executions ingested yet")
        if not self._dirty and self._cached_graph is not None and (
            trace is None
        ):
            return self._cached_graph.copy()
        if trace is None:
            trace = MiningTrace(recorder=self.recorder)
        with self.recorder.span("incremental/materialize"):
            mined = self._state.finish(
                threshold=self.threshold, trace=trace
            )
            if self.mode == MODE_CYCLIC:
                mined = merge_instances(mined)
        edges = frozenset(mined.edge_set())
        if edges == self._last_edges:
            self._stable_since += 1
        else:
            self._stable_since = 0
            self._last_edges = edges
        self._dirty = False
        self._cached_graph = mined
        return mined.copy()

    def stability(self) -> int:
        """Consecutive ``graph()`` materializations with an unchanged
        edge set — a convergence signal for deployments that poll."""
        return self._stable_since

    def has_converged(self, window: int = 10) -> bool:
        """Whether the mined edge set survived ``window`` consecutive
        materializations unchanged."""
        return self._stable_since >= window

    def reset(self) -> None:
        """Discard all ingested executions and cached state."""
        self._state = MiningState(labelled=(self.mode == MODE_CYCLIC))
        self._last_edges = None
        self._stable_since = 0
        self._dirty = True
        self._cached_graph = None

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, path: PathOrStr) -> None:
        """Write the miner's sufficient statistics to ``path``, atomically.

        The checkpoint is a JSON document (format version 3): the
        canonical :meth:`MiningState.to_payload
        <repro.core.state.MiningState.to_payload>` serialization plus
        the stability counters — everything needed to make
        :meth:`resume` followed by further ``add`` calls
        indistinguishable from one uninterrupted miner.  The file is
        written to a temporary sibling and moved into place with
        :func:`os.replace`, so a crash mid-write never leaves a partial
        checkpoint behind.  Checkpoints double as ``merge-states``
        shard inputs.
        """
        path = Path(path)
        with self.recorder.span("incremental/checkpoint"):
            save_state(
                self._state,
                path,
                mode=self.mode,
                threshold=self.threshold,
                last_edges=self._last_edges,
                stable_since=self._stable_since,
            )
        stat = path.stat()
        self.recorder.gauge("repro_checkpoint_bytes", stat.st_size)
        self.recorder.gauge(
            "repro_checkpoint_variants", self.variant_count
        )
        self.recorder.gauge(
            "repro_checkpoint_executions", self.execution_count
        )

    @classmethod
    def resume(
        cls,
        path: PathOrStr,
        recorder: Optional[Recorder] = None,
    ) -> "IncrementalMiner":
        """Reconstruct a miner from a :meth:`checkpoint` file.

        Reads checkpoint versions 1, 2 and 3 (see
        :data:`repro.core.state.CHECKPOINT_VERSION`).  With a recorder,
        the checkpoint's size and age (seconds since its last
        modification — how stale the resumed state is) are recorded as
        ``repro_checkpoint_bytes`` / ``repro_checkpoint_age_seconds``
        gauges.

        A hardened checkpoint that fails its integrity check falls back
        to the ``.prev`` sibling the durable session keeps (see
        :func:`repro.core.state.load_state_with_fallback`).

        Raises
        ------
        CheckpointError
            When the file is not a checkpoint, is corrupt with no good
            ``.prev`` fallback, or has an incompatible version.
        """
        obs = resolve_recorder(recorder)
        try:
            stat = os.stat(path)
            obs.gauge("repro_checkpoint_bytes", stat.st_size)
            obs.gauge(
                "repro_checkpoint_age_seconds",
                max(now() - stat.st_mtime, 0.0),
            )
        except OSError:
            pass  # load_state() below reports unreadable paths properly
        state, meta, _ = load_state_with_fallback(path, obs)
        miner = cls(
            mode=meta["mode"],
            threshold=meta["threshold"],
            recorder=recorder,
        )
        miner._state = state
        miner._last_edges = meta["last_edges"]
        miner._stable_since = meta["stable_since"]
        return miner
