"""Pluggable kernels for the Algorithm 1-4 hot paths.

``BENCH_mining.json`` shows ``prepare`` and ``step5_reduce`` dominating
every large mining cell, and the step-5 reduction cache collapsing to
zero hits once variant diversity rises.  This module packages the three
mechanisms that fix that, behind a small selectable interface:

* **Slotted batch reduction** — Algorithm 4 runs over *all* trace
  variants simultaneously.  Every variant occupies one fixed-width slot
  of a single big ``int``; one bignum OR per DAG edge advances the
  descendant bitsets of every variant at once, so the per-variant cost
  of step 5 drops from "one graph walk" to "a few machine words".  The
  scalar :func:`~repro.graphs.transitive.transitive_reduction_packed`
  remains the fallback for variants the batch cannot express (interval
  overlaps, repeated activities, noise thresholds, cyclic ablations).
* **Prefix-reuse reduction cache** — for incremental calls (a warm
  :class:`KernelState`), new variants are reduced by a position-space
  walker that resumes from the longest previously-walked rank-prefix,
  so a variant extending a known one pays only for its new suffix.
  Exact hits, prefix extends and cold misses are accounted separately
  (``repro_kernel_prefix_cache_events_total``).
* **Optional numpy backend** — ``--kernel numpy`` / ``REPRO_KERNEL=numpy``
  vectorizes the batched reduction over position-space boolean tensors.
  numpy is never imported unless that kernel is requested, and never a
  hard dependency: requesting it without numpy installed raises
  :class:`~repro.errors.KernelUnavailableError`.

Kernel selection precedence: explicit argument (CLI ``--kernel``) over
the ``REPRO_KERNEL`` environment variable over the default (``bitset``).

The correctness backbone of the batch path is a structural fact about
Algorithm 2: with noise threshold <= 1, a *total-order* variant (a
sequential trace without repeated activities — its ordered-pair set is
complete over its vertices) induces exactly ``edges & (S x S)`` on the
step-4 edge set ``edges``, where ``S`` is its vertex set.  Proof sketch:
``(u, v) in edges`` with ``u, v in S`` means ``(v, u)`` was never
observed anywhere — otherwise step 3 would have dropped both directions
(2-cycle or overlap independence) — so the total order of the variant
must list ``u`` before ``v``.  A threshold > 1 breaks the argument (the
reverse pair may have been dropped as noise), which is why the batch
path requires ``threshold <= 1`` and everything else falls back to the
scalar reducer.  The naive pipeline in :mod:`repro.core.reference` stays
the differential oracle for all of this.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import KernelUnavailableError
from repro.graphs.transitive import (
    ClosureBitset,
    transitive_closure_bitset,
    transitive_reduction_packed,
)

__all__ = [
    "KERNEL_ENV",
    "DEFAULT_KERNEL",
    "KERNEL_NAMES",
    "Kernel",
    "PureKernel",
    "BitsetKernel",
    "NumpyKernel",
    "KernelState",
    "ReduceContext",
    "ReduceStats",
    "resolve_kernel_name",
    "get_kernel",
    "numpy_available",
    "ClosureBitset",
    "transitive_closure_bitset",
]

#: Environment variable consulted when no explicit kernel is requested.
KERNEL_ENV = "REPRO_KERNEL"
#: Kernel used when neither an argument nor the environment chooses one.
DEFAULT_KERNEL = "bitset"
#: Every selectable kernel name.
KERNEL_NAMES = ("pure", "bitset", "numpy")

#: New-mask batches at or below this size use the prefix-reuse walker
#: (when a persistent :class:`KernelState` is available) instead of the
#: slotted batch: small deltas are where prefix resumption wins, large
#: cold batches are where the slotted bignum pass wins.
WALKER_BATCH_LIMIT = 24

#: Hard cap on stored prefix states; beyond it the trie stops growing
#: (lookups still work), bounding memory on adversarial variant streams.
PREFIX_TRIE_LIMIT = 65536


def resolve_kernel_name(explicit: Optional[str] = None) -> str:
    """Resolve the kernel name: explicit > ``REPRO_KERNEL`` > default."""
    name = explicit
    if name is None:
        env = os.environ.get(KERNEL_ENV)
        if env is not None and env.strip():
            name = env.strip().lower()
    if name is None:
        return DEFAULT_KERNEL
    if name not in KERNEL_NAMES:
        raise KernelUnavailableError(
            f"unknown kernel {name!r}; valid kernels: "
            + ", ".join(KERNEL_NAMES)
        )
    return name


def numpy_available() -> bool:
    """Whether the optional numpy backend can be imported."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


# ----------------------------------------------------------------------
# Reduction context — per (edges, rank) setup shared by a whole batch
# ----------------------------------------------------------------------
@dataclass
class ReduceContext:
    """Amortized per-run setup for batched step-5 reductions.

    Built once from the step-4 edge set; every batched or walked
    reduction of the run shares the packed successor/predecessor rows
    and the topological ranks, which is what makes the batch path
    "amortize rank/adjacency setup" across variants.
    """

    n: int
    #: Successor bitmask per vertex id (``rows[u]`` bit ``v`` = edge u->v).
    succ_rows: List[int]
    #: Predecessor bitmask per vertex id.
    pred_rows: List[int]
    #: Successor id lists (only edge-bearing sources present).
    adjacency: Dict[int, List[int]]
    #: Topological rank of every edge-bearing vertex.
    rank: Dict[int, int]
    #: ``rank_arr[u]`` = rank or -1 for unranked vertices.
    rank_arr: List[int]
    #: Edge-bearing vertices in rank-descending order.
    ranked_desc: List[int]
    #: Bytes per variant slot in the slotted representation.
    slot_bytes: int

    @classmethod
    def from_edges(
        cls, edges: Set[int], n: int, rank: Dict[int, int]
    ) -> "ReduceContext":
        succ_rows = [0] * n
        pred_rows = [0] * n
        adjacency: Dict[int, List[int]] = {}
        for code in edges:
            u, v = divmod(code, n)
            succ_rows[u] |= 1 << v
            pred_rows[v] |= 1 << u
            if u in adjacency:
                adjacency[u].append(v)
            else:
                adjacency[u] = [v]
        rank_arr = [-1] * n
        for u, r in rank.items():
            rank_arr[u] = r
        ranked_desc = sorted(rank, key=rank.__getitem__, reverse=True)
        return cls(
            n=n,
            succ_rows=succ_rows,
            pred_rows=pred_rows,
            adjacency=adjacency,
            rank=rank,
            rank_arr=rank_arr,
            ranked_desc=ranked_desc,
            slot_bytes=(n + 7) // 8,
        )

    @classmethod
    def from_rows(
        cls,
        succ_rows: List[int],
        adjacency: Dict[int, List[int]],
        n: int,
        rank: Dict[int, int],
        with_pred: bool = True,
    ) -> "ReduceContext":
        """Build a context from already-materialized row structures.

        The fused row pipeline has the successor bitmasks and the
        adjacency id lists in hand when step 5 starts, so re-deriving
        them from a packed edge-code set (as :meth:`from_edges` does)
        would decode every edge twice more.  ``with_pred=False`` skips
        the predecessor transpose — it is only consumed by the prefix
        walker, which never runs without a persistent kernel state.
        """
        pred_rows = [0] * n
        if with_pred:
            for u, targets in adjacency.items():
                bit = 1 << u
                for v in targets:
                    pred_rows[v] |= bit
        rank_arr = [-1] * n
        for u, r in rank.items():
            rank_arr[u] = r
        ranked_desc = sorted(rank, key=rank.__getitem__, reverse=True)
        return cls(
            n=n,
            succ_rows=succ_rows,
            pred_rows=pred_rows,
            adjacency=adjacency,
            rank=rank,
            rank_arr=rank_arr,
            ranked_desc=ranked_desc,
            slot_bytes=(n + 7) // 8,
        )

    def ranked_ids(self, smask: int) -> List[int]:
        """Edge-bearing vertices of a variant mask, rank-ascending."""
        rank_arr = self.rank_arr
        ids = []
        m = smask
        while m:
            bit = m & -m
            m ^= bit
            u = bit.bit_length() - 1
            if rank_arr[u] >= 0:
                ids.append(u)
        ids.sort(key=rank_arr.__getitem__)
        return ids


# ----------------------------------------------------------------------
# Persistent cross-call cache (exact + prefix reuse)
# ----------------------------------------------------------------------
@dataclass
class KernelState:
    """Cross-call reduction cache for incremental mining.

    Holds everything the batch path may reuse between calls whose step-4
    edge set is unchanged: the set of already-reduced variant vertex
    masks, the union of their kept edges, and the prefix trie of walker
    states.  Any change to the edge set (or the packing modulus) resets
    the state — a reduction is only a function of ``(edges, S)``.

    The cached union assumes the variant population only *grows* between
    calls on the same edge set (true for :class:`~repro.core.state.
    MiningState` and the incremental miner, which re-finish supersets);
    callers without that property should pass a fresh state per call.
    """

    edges_token: Optional[Tuple[object, ...]] = None
    seen_masks: Set[int] = field(default_factory=set)
    marked_union: Set[int] = field(default_factory=set)
    #: rank-prefix tuple -> (ancestor-mask tuple, kept-code tuple)
    trie: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], Tuple[int, ...]]] = (
        field(default_factory=dict)
    )
    #: Step-4 output cached by the row pipeline for the current token:
    #: ``(erows, adjacency, rank, scc_removed)``.
    step4_cache: Optional[
        Tuple[List[int], Dict[int, List[int]], Dict[int, int], int]
    ] = None
    #: pairs frozenset -> total-order vertex mask (or None verdict);
    #: edges-independent, so it survives ``for_edges`` resets and only
    #: clears when the packing modulus changes.
    mask_cache: Dict[FrozenSet[int], Optional[int]] = field(
        default_factory=dict
    )
    mask_cache_n: Optional[int] = None

    def for_edges(
        self, edges: Set[int], n: int
    ) -> "KernelState":
        """Reset the state unless it matches ``(n, edges)``; return self."""
        token: Tuple[object, ...] = (n, frozenset(edges))
        if self.edges_token != token:
            self.edges_token = token
            self.seen_masks = set()
            self.marked_union = set()
            self.trie = {}
            self.step4_cache = None
        return self

    def for_step3_rows(
        self, rows: Sequence[int], n: int
    ) -> "KernelState":
        """Reset the state unless the step-3 successor rows match.

        Row-pipeline counterpart of :meth:`for_edges`: the post-step-3
        rows determine the step-4 edge set, so they are a sound (if
        stricter) cache key — and comparing ``n`` ints on a warm call
        beats decoding and freezing the edge-code set every time.
        """
        token: Tuple[object, ...] = (n, "rows", tuple(rows))
        if self.edges_token != token:
            self.edges_token = token
            self.seen_masks = set()
            self.marked_union = set()
            self.trie = {}
            self.step4_cache = None
        return self

    def mask_cache_for(
        self, n: int
    ) -> Dict[FrozenSet[int], Optional[int]]:
        """Total-order verdict cache, reset when ``n`` changes.

        A variant's verdict depends on its pairs and on the packing
        modulus ``n`` only — never on the current edge set — so this
        cache deliberately outlives :meth:`for_edges` resets.
        """
        if self.mask_cache_n != n:
            self.mask_cache_n = n
            self.mask_cache = {}
        return self.mask_cache


@dataclass
class ReduceStats:
    """Accounting of one batched step-5 run, mirrored into the trace."""

    exact_hits: int = 0
    prefix_extends: int = 0
    misses: int = 0
    #: Reductions computed per implementation path.
    paths: Dict[str, int] = field(default_factory=dict)

    def bump(self, path: str, amount: int = 1) -> None:
        if amount:
            self.paths[path] = self.paths.get(path, 0) + amount


# ----------------------------------------------------------------------
# Slotted bit-parallel batch reduction (the bitset kernel's bulk path)
# ----------------------------------------------------------------------
def slotted_reduce_union(
    ctx: ReduceContext, smasks: Sequence[int]
) -> Set[int]:
    """Union of kept edges over many total-order variants at once.

    Variant ``t`` occupies bit slot ``[t*W, (t+1)*W)`` of one big int
    (``W`` = ``ctx.slot_bytes * 8`` >= ``n``).  Walking vertices in
    reverse topological order, slot ``t`` of ``DESC[u]`` accumulates the
    descendant bitset of ``u`` *within variant t's induced subgraph* —
    Algorithm 4's per-node descendant set, advanced for every variant by
    the same bignum OR.  An edge is kept when some slot still reaches
    its target in no other way; the per-slot kept vectors are folded
    into plain packed codes at the end.
    """
    if not smasks:
        return set()
    slot_bytes = ctx.slot_bytes
    slot_bits = slot_bytes * 8
    count = len(smasks)
    s_vec = int.from_bytes(
        b"".join(m.to_bytes(slot_bytes, "little") for m in smasks),
        "little",
    )
    rep_one = int.from_bytes(
        (b"\x01" + b"\x00" * (slot_bytes - 1)) * count, "little"
    )
    full_slot = (1 << slot_bits) - 1
    adjacency = ctx.adjacency
    succ_rows = ctx.succ_rows
    desc: Dict[int, int] = {}
    desc_get = desc.get
    kept_vecs: Dict[int, int] = {}
    for u in ctx.ranked_desc:
        successors = adjacency.get(u)
        if successors is None:
            continue  # sink: empty descendant set, nothing kept
        pres_full = ((s_vec >> u) & rep_one) * full_slot
        row = s_vec & pres_full & (succ_rows[u] * rep_one)
        through = 0
        for w in successors:
            d = desc_get(w)
            if d is not None:
                through |= d
        if through:
            kept = row & ~through
            desc[u] = (row | through) & pres_full
        else:
            kept = row
            desc[u] = row
        if kept:
            kept_vecs[u] = kept

    # Fold each kept vector's slots together (halving passes), then
    # decode the union row into packed codes.
    n = ctx.n
    marked: Set[int] = set()
    add = marked.add
    span_slots = count
    fold_plan: List[Tuple[int, int]] = []
    while span_slots > 1:
        half_slots = (span_slots + 1) // 2
        shift = half_slots * slot_bits
        fold_plan.append((shift, (1 << shift) - 1))
        span_slots = half_slots
    for u, vec in kept_vecs.items():
        for shift, mask in fold_plan:
            vec = (vec & mask) | (vec >> shift)
        row = vec & full_slot
        base = u * n
        while row:
            bit = row & -row
            row ^= bit
            add(base + bit.bit_length() - 1)
    return marked


# ----------------------------------------------------------------------
# Position-space walker with prefix reuse (the incremental path)
# ----------------------------------------------------------------------
def walk_reduce(
    ctx: ReduceContext,
    smask: int,
    trie: Optional[
        Dict[Tuple[int, ...], Tuple[Tuple[int, ...], Tuple[int, ...]]]
    ] = None,
) -> Tuple[FrozenSet[int], int]:
    """Reduce one total-order variant; resume from a cached rank-prefix.

    Runs Algorithm 4 in *position space*: the variant's edge-bearing
    vertices, rank-ascending, get positions ``0..k-1`` and ancestor sets
    become k-bit machine words.  The ancestor state after position ``j``
    depends only on the prefix ``ids[:j]``, so a trie keyed on prefixes
    lets a variant that extends a previously-walked one resume mid-walk.

    Returns ``(kept codes, resume position)`` — a resume position > 0
    means the prefix cache saved that many positions ("prefix extend").
    """
    ids = ctx.ranked_ids(smask)
    k = len(ids)
    if k == 0:
        return frozenset(), 0
    n = ctx.n
    pred_rows = ctx.pred_rows
    key = tuple(ids)
    anc: List[int] = [0] * k
    kept: List[int] = []
    start = 0
    if trie is not None:
        probe = k
        while probe > 0:
            state = trie.get(key[:probe])
            if state is not None:
                anc_prefix, kept_prefix = state
                anc[: len(anc_prefix)] = anc_prefix
                kept.extend(kept_prefix)
                start = probe
                break
            probe -= 1

    pos_of: Dict[int, int] = {u: j for j, u in enumerate(ids)}
    for j in range(start, k):
        u = ids[j]
        pm = pred_rows[u] & smask
        through = 0
        ppos = 0
        while pm:
            bit = pm & -pm
            pm ^= bit
            i = pos_of.get(bit.bit_length() - 1)
            if i is None:
                continue  # unranked predecessor: not in the DAG
            ppos |= 1 << i
            through |= anc[i]
        kept_bits = ppos & ~through
        while kept_bits:
            bit = kept_bits & -kept_bits
            kept_bits ^= bit
            kept.append(ids[bit.bit_length() - 1] * n + u)
        anc[j] = ppos | through
    if trie is not None and len(trie) < PREFIX_TRIE_LIMIT:
        trie[key] = (tuple(anc), tuple(kept))
    return frozenset(kept), start


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
class Kernel:
    """A selectable implementation of the mining hot paths.

    ``supports_masks`` advertises the batched total-order reduction;
    the ``pure`` kernel leaves it off, keeping the legacy per-variant
    scalar path byte-for-byte identical.
    """

    name: str = "pure"
    supports_masks: bool = False

    def bulk_reduce_union(
        self, ctx: ReduceContext, smasks: Sequence[int]
    ) -> Set[int]:
        """Union of kept edges over a batch of variant vertex masks."""
        raise NotImplementedError(
            f"kernel {self.name!r} has no batched reduction"
        )

    def reduce_masks(
        self,
        ctx: ReduceContext,
        smasks: Sequence[int],
        state: Optional[KernelState],
        stats: ReduceStats,
    ) -> Set[int]:
        """Reduce a batch of total-order variant masks to kept edges.

        Deduplicates against ``state`` (exact hits), walks small deltas
        through the prefix trie (prefix extends) and sends large cold
        batches through :meth:`bulk_reduce_union` (misses), keeping the
        three kinds of cache traffic separately accounted in ``stats``.
        """
        if state is None:
            seen: Set[int] = set()
            marked_union: Set[int] = set()
            trie = None
        else:
            seen = state.seen_masks
            marked_union = state.marked_union
            trie = state.trie
        new: List[int] = []
        for smask in smasks:
            if smask in seen:
                stats.exact_hits += 1
            else:
                seen.add(smask)
                new.append(smask)
        if new:
            stats.misses += len(new)
            if state is not None and len(new) <= WALKER_BATCH_LIMIT:
                extends = 0
                for smask in new:
                    kept, resumed = walk_reduce(ctx, smask, trie)
                    if resumed:
                        extends += 1
                    marked_union |= kept
                stats.prefix_extends = extends
                stats.misses -= extends
                stats.bump("walker", len(new))
            else:
                marked_union |= self.bulk_reduce_union(ctx, new)
                stats.bump("slotted", len(new))
        return set(marked_union)


class PureKernel(Kernel):
    """The legacy scalar pipeline, unchanged — also the safety net."""

    name = "pure"
    supports_masks = False


class BitsetKernel(Kernel):
    """Big-int slotted batch reduction + prefix-reuse walker."""

    name = "bitset"
    supports_masks = True

    def bulk_reduce_union(
        self, ctx: ReduceContext, smasks: Sequence[int]
    ) -> Set[int]:
        return slotted_reduce_union(ctx, smasks)


class NumpyKernel(BitsetKernel):
    """Numpy-vectorized batch reduction; everything else as bitset."""

    name = "numpy"

    def __init__(self) -> None:
        try:
            import numpy
        except ImportError as exc:  # pragma: no cover - numpy-free leg
            raise KernelUnavailableError(
                "kernel 'numpy' requires numpy, which is not installed; "
                "use --kernel bitset (the default) or install numpy"
            ) from exc
        self._np = numpy

    def bulk_reduce_union(
        self, ctx: ReduceContext, smasks: Sequence[int]
    ) -> Set[int]:
        return _numpy_reduce_union(self._np, ctx, smasks)


def _numpy_reduce_union(
    np: Any, ctx: ReduceContext, smasks: Sequence[int]
) -> Set[int]:
    """Batched Algorithm 4 over position-space boolean tensors.

    Same mathematics as :func:`slotted_reduce_union`, vectorized over
    ``(variant, position, position)`` boolean arrays: one fancy-indexed
    gather builds every variant's induced adjacency at once, and ``k``
    tensor steps (k = longest variant) advance all ancestor sets.
    """
    count = len(smasks)
    if count == 0:
        return set()
    n = ctx.n
    slot_bytes = ctx.slot_bytes
    data = b"".join(m.to_bytes(slot_bytes, "little") for m in smasks)
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8).reshape(count, slot_bytes),
        axis=1,
        bitorder="little",
    )[:, :n]
    ranked = np.zeros(n, dtype=bool)
    rank_arr = np.full(n, -1, dtype=np.int64)
    for u, r in ctx.rank.items():
        ranked[u] = True
        rank_arr[u] = r
    bits = bits.astype(bool) & ranked[None, :]
    t_idx, u_idx = np.nonzero(bits)
    if t_idx.size == 0:
        return set()
    order = np.lexsort((rank_arr[u_idx], t_idx))
    t_sorted = t_idx[order]
    u_sorted = u_idx[order]
    counts = np.bincount(t_sorted, minlength=count)
    k_max = int(counts.max())
    ids = np.zeros((count, k_max), dtype=np.int64)
    valid = np.arange(k_max)[None, :] < counts[:, None]
    ids[valid] = u_sorted

    edge_matrix = np.zeros((n, n), dtype=bool)
    for u, targets in ctx.adjacency.items():
        edge_matrix[u, targets] = True
    # induced[t, i, j] — variant t activates the edge ids[i] -> ids[j]
    induced = edge_matrix[ids[:, :, None], ids[:, None, :]]
    induced &= valid[:, :, None] & valid[:, None, :]

    anc = np.zeros((count, k_max, k_max), dtype=bool)
    kept = np.zeros_like(induced)
    for j in range(k_max):
        pred = induced[:, :, j]
        through = (pred[:, :, None] & anc).any(axis=1)
        kept[:, :, j] = pred & ~through
        anc[:, j, :] = through | pred
    t_kept, i_kept, j_kept = np.nonzero(kept)
    codes = ids[t_kept, i_kept] * n + ids[t_kept, j_kept]
    return set(np.unique(codes).tolist())


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
_KERNELS: Dict[str, Kernel] = {}


def get_kernel(name: Optional[str] = None) -> Kernel:
    """Return the kernel selected by ``name``/environment/default.

    Instances are cached per name; the numpy kernel imports numpy on
    first use and raises :class:`~repro.errors.KernelUnavailableError`
    when it is missing.
    """
    resolved = resolve_kernel_name(name)
    kernel = _KERNELS.get(resolved)
    if kernel is None:
        if resolved == "pure":
            kernel = PureKernel()
        elif resolved == "bitset":
            kernel = BitsetKernel()
        else:
            kernel = NumpyKernel()
        _KERNELS[resolved] = kernel
    return kernel


def scalar_reduce_union(
    ctx: ReduceContext, smasks: Sequence[int]
) -> Set[int]:
    """Reference implementation of the batch contract, one walk per mask.

    Used by the differential tests and the batched-reduce bench cell as
    the per-variant baseline for :func:`slotted_reduce_union`.
    """
    marked: Set[int] = set()
    for smask in smasks:
        kept, _ = walk_reduce(ctx, smask, None)
        marked |= kept
    return marked


def induced_codes(
    ctx: ReduceContext, smask: int
) -> FrozenSet[int]:
    """``edges & (S x S)`` for a total-order variant mask (test helper)."""
    codes: List[int] = []
    n = ctx.n
    succ_rows = ctx.succ_rows
    m = smask
    while m:
        bit = m & -m
        m ^= bit
        u = bit.bit_length() - 1
        row = succ_rows[u] & smask
        base = u * n
        while row:
            b = row & -row
            row ^= b
            codes.append(base + b.bit_length() - 1)
    return frozenset(codes)
