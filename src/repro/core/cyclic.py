"""Algorithm 3 (Cyclic graphs) — Section 5 of the paper.

Cycles make repeated activity instances legitimate, so the DAG algorithms
would wrongly discard them as 2-cycles.  Algorithm 3 instead:

1. relabels the ``k``-th appearance of activity ``A`` in an execution as
   the distinct vertex ``(A, k)`` (the paper's ``A1, A2, ...``);
2. runs the Algorithm 2 pipeline (steps 2–7) on the relabelled log;
3. merges each activity's instance vertices back into one vertex, adding
   the edge ``(A, B)`` whenever some instance edge ``((A, i), (B, j))``
   survived — instance pairs of the same activity never produce
   self-loops, but ``B -> C`` and ``C -> B`` instance edges reconstruct the
   cycle.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.core.general_dag import (
    MiningTrace,
    PreparedExecution,
    _mine_packed,
    prepare_executions,
    prepare_packed_log,
)
from repro.core.kernels import get_kernel
from repro.graphs.digraph import DiGraph
from repro.logs.event_log import EventLog

Instance = Tuple[str, int]


def prepare_labelled_log(
    log: EventLog, jobs: Optional[int] = None
) -> List[PreparedExecution]:
    """Relabel executions (step 2 of Algorithm 3) into prepared views.

    Vertices become ``(activity, occurrence)`` pairs; ordered pairs between
    distinct instances of the *same* activity are kept — Algorithm 3 treats
    them as ordinary vertices (their edges either survive as the loop's
    backbone or are pruned like any other edge).  Identical trace
    variants are prepared once; ``jobs`` fans the distinct variants out
    over worker processes.
    """
    return prepare_executions(list(log), labelled=True, jobs=jobs)


def merge_instances(instance_graph: DiGraph) -> DiGraph:
    """Step 8: merge instance vertices back to activities.

    An edge ``(A, B)`` with ``A != B`` appears in the merged graph iff some
    edge joins an instance of ``A`` to an instance of ``B``.
    """
    merged = DiGraph(
        nodes=sorted({activity for activity, _ in instance_graph.nodes()})
    )
    for (src_activity, _), (dst_activity, _) in instance_graph.edges():
        if src_activity != dst_activity:
            merged.add_edge(src_activity, dst_activity)
    return merged


def mine_cyclic(
    log: EventLog,
    threshold: int = 0,
    trace: Optional[MiningTrace] = None,
    return_instance_graph: bool = False,
    jobs: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Union[DiGraph, Tuple[DiGraph, DiGraph]]:
    """Mine a (possibly cyclic) conformal graph of ``log`` with Algorithm 3.

    Parameters
    ----------
    log:
        Executions of one process; activities may repeat within an
        execution.
    threshold:
        Section 6 noise threshold applied to the relabelled pair counts.
    trace:
        Optional :class:`MiningTrace` diagnostics sink.
    jobs:
        Worker processes for pair extraction and step-5 marking
        (``None`` defers to ``REPRO_JOBS``; 1 = serial).
    kernel:
        Mining kernel name (``None`` defers to ``REPRO_KERNEL``, else
        the default ``bitset``); see :mod:`repro.core.kernels`.
    return_instance_graph:
        When true, return ``(merged_graph, instance_graph)`` — the
        intermediate graph over ``(activity, occurrence)`` vertices is what
        the paper's Figure 6 (left) shows.

    Returns
    -------
    DiGraph or (DiGraph, DiGraph)
        The merged activity graph, optionally with the instance graph.

    Examples
    --------
    Example 8 of the paper — log ``{ABDCE, ABDCBCE, ABCBDCE, ADE}`` mines
    to a graph with the B/C cycle:

    >>> from repro.logs.event_log import EventLog
    >>> log = EventLog.from_sequences(["ABDCE", "ABDCBCE", "ABCBDCE", "ADE"])
    >>> graph = mine_cyclic(log)
    >>> graph.has_edge("B", "C") and graph.has_edge("C", "B")
    True
    """
    log.require_non_empty()
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    trace = trace if trace is not None else MiningTrace()
    with trace.stage("prepare"):
        table, variants = prepare_packed_log(
            list(log), labelled=True, jobs=jobs, recorder=trace.recorder
        )
    instance_graph = _mine_packed(
        table,
        variants,
        threshold=threshold,
        trace=trace,
        jobs=jobs,
        kernel=get_kernel(kernel),
    )
    with trace.stage("merge_instances"):
        merged = merge_instances(instance_graph)
    if return_instance_graph:
        return merged, instance_graph
    return merged


def max_instance_counts(log: EventLog) -> dict:
    """Per activity, the maximum occurrences in any one execution.

    The paper notes the instance-vertex set size equals this maximum (the
    ``k`` of Theorem 6's ``O(m(kn)^3)`` bound).
    """
    maxima: dict = {}
    for execution in log:
        counts: dict = {}
        for activity in execution.sequence:
            counts[activity] = counts.get(activity, 0) + 1
        for activity, count in counts.items():
            if count > maxima.get(activity, 0):
                maxima[activity] = count
    return maxima
