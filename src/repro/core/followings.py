"""The "following" relation (Definition 3) and ordered-pair extraction.

Definition 3: activity ``B`` *follows* ``A`` if either ``B`` starts after
``A`` terminates in each execution in which both appear, or some ``C``
exists with ``C`` following ``A`` and ``B`` following ``C``.  The relation
is thus the transitive closure of a *direct* following relation grounded in
co-occurrence.

Two readings of the base case are possible when ``A`` and ``B`` never
co-occur: the universal quantifier is vacuously true (both follow each
other), or following requires evidence (neither follows).  Both readings
classify such pairs as **independent** under Definition 4; we use the
evidence-based reading because it keeps transitive chains grounded in
observations, matching the reasoning of the paper's Example 3.

This module also hosts :func:`execution_pair_sets`, the shared step-2
primitive of Algorithms 1–3: the set of ordered activity pairs
"(u terminates before v starts)" per execution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import transitive_closure_bitset
from repro.logs.event_log import EventLog

Pair = Tuple[str, str]


def execution_pair_sets(log: EventLog) -> List[FrozenSet[Pair]]:
    """Return, per execution, the set of ordered activity pairs.

    A pair ``(u, v)`` is included when some completed instance of ``u``
    terminated before some instance of ``v`` started (Algorithm 1/2
    step 2).  Pairs of the same activity are excluded (they belong to the
    relabelled view of Algorithm 3).  The per-execution sets are cached
    on the executions, so repeated calls (and other step-2 consumers)
    pay the quadratic extraction once.
    """
    return [execution.ordered_pair_set() for execution in log]


def pair_execution_counts(log: EventLog) -> Counter:
    """Count, for each ordered pair, the executions exhibiting it.

    These are the Section 6 noise counters: "a counter for each edge in E
    to register how many times this edge appears".
    """
    counts: Counter = Counter()
    for pairs in execution_pair_sets(log):
        counts.update(pairs)
    return counts


@dataclass(frozen=True)
class FollowRelation:
    """The following relation over a log's activities.

    Attributes
    ----------
    activities:
        All activities of the log.
    direct:
        Pairs ``(a, b)`` where ``b`` directly follows ``a``: they co-occur
        at least once and ``b`` starts after ``a`` terminates in *every*
        co-occurrence.
    closed:
        The full following relation — the transitive closure of ``direct``.
        ``(a, b)`` in ``closed`` means "``b`` follows ``a``".
    """

    activities: FrozenSet[str]
    direct: FrozenSet[Pair]
    closed: FrozenSet[Pair]

    def follows(self, first: str, second: str) -> bool:
        """Whether ``second`` follows ``first`` (Definition 3)."""
        return (first, second) in self.closed

    def directly_follows(self, first: str, second: str) -> bool:
        """Whether ``second`` directly follows ``first`` (base case)."""
        return (first, second) in self.direct

    def graph(self) -> DiGraph:
        """The graph of direct followings (Section 4's "graph of
        followings", whose strongly connected components Algorithm 2
        inspects)."""
        return DiGraph(nodes=sorted(self.activities), edges=self.direct)


def follow_relation(log: EventLog) -> FollowRelation:
    """Compute the :class:`FollowRelation` of ``log``.

    Examples
    --------
    Example 3 of the paper — log ``{ABCE, ACDE, ADBE}``:

    >>> from repro.logs.event_log import EventLog
    >>> log = EventLog.from_sequences(["ABCE", "ACDE", "ADBE"])
    >>> relation = follow_relation(log)
    >>> relation.follows("A", "B")   # B follows A
    True
    >>> relation.follows("D", "B")   # B follows D (sole co-occurrence)
    True
    >>> relation.follows("B", "D")   # D follows B via C
    True
    """
    activities = log.activities()
    # Step-2 pair sets are consumed once (cached per execution) instead
    # of re-running the quadratic ordered_pairs() extraction, and
    # co-occurrence pairs are expanded once per *distinct* activity set
    # with multiplicities — duplicate executions are free.
    ordered: Counter = Counter()
    activity_set_counts: Counter = Counter()
    for execution in log:
        ordered.update(execution.ordered_pair_set())
        activity_set_counts[execution.activities] += 1

    co_occur: Counter = Counter()
    for activity_set, count in activity_set_counts.items():
        present = sorted(activity_set)
        for i, first in enumerate(present):
            for j in range(i + 1, len(present)):
                co_occur[(first, present[j])] += count

    direct: Set[Pair] = set()
    for (first, second), count in co_occur.items():
        if ordered[(first, second)] == count:
            direct.add((first, second))
        if ordered[(second, first)] == count:
            direct.add((second, first))

    closure = transitive_closure_bitset(
        DiGraph(nodes=sorted(activities), edges=direct)
    )
    closed = frozenset(
        (source, target)
        for source, target in closure.iter_edges()
        if source != target
    )
    return FollowRelation(
        activities=activities,
        direct=frozenset(direct),
        closed=closed,
    )


def union_pairs(pair_sets: Iterable[FrozenSet[Pair]]) -> Set[Pair]:
    """Union a collection of per-execution pair sets (step 2's edge set)."""
    result: Set[Pair] = set()
    for pairs in pair_sets:
        result |= pairs
    return result


def remove_two_cycles(edges: Set[Pair]) -> Set[Pair]:
    """Drop every pair present in both directions (step 3 of Algorithms
    1–3): such activities appeared in both orders and are independent."""
    return {
        (source, target)
        for source, target in edges
        if (target, source) not in edges
    }


def activity_vertex_sets(log: EventLog) -> List[FrozenSet[str]]:
    """Return, per execution, the set of activities that completed."""
    return [execution.activities for execution in log]


def presence_counts(log: EventLog) -> Dict[str, int]:
    """Count, per activity, the number of executions containing it."""
    counts: Counter = Counter()
    for execution in log:
        counts.update(execution.activities)
    return dict(counts)
