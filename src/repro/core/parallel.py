"""Opt-in process-based parallelism for the mining pipeline.

Mining is pure CPU-bound Python, so threads cannot help under the GIL;
worker *processes* can.  Parallelism is strictly opt-in — ``jobs=1``
(the default) never touches :mod:`multiprocessing` — and is requested
either explicitly (``jobs=N`` on the miners, ``--jobs`` on the CLI) or
ambiently through the ``REPRO_JOBS`` environment variable.

Work is split into contiguous chunks, one future per chunk, and the
results are merged in submission order, so the outcome is deterministic
and identical to the serial path: the stages that fan out (pair
extraction, per-variant transitive reductions) produce per-item values
or sets whose union is order-independent.  :func:`process_fold` is the
streaming variant: it consumes an *iterator* of chunks with a bounded
in-flight window and folds each worker's single compact result into an
accumulator in submission order, so neither the input nor the per-item
results are ever materialized in the parent.

If a process pool cannot be created at all (restricted sandboxes with no
``fork``/``spawn``), the helpers degrade to serial execution rather than
failing the mine.
"""

from __future__ import annotations

import os
import pickle
import random
import time
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import (
    Callable,
    Deque,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.obs.recorder import NULL_RECORDER, Recorder

JOBS_ENV = "REPRO_JOBS"

_Chunk = TypeVar("_Chunk")
_Result = TypeVar("_Result")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``jobs`` request into a concrete worker count.

    ``None`` defers to the ``REPRO_JOBS`` environment variable; an unset
    or empty variable means serial (1).  Explicit values must be >= 1.

    Examples
    --------
    >>> resolve_jobs(4)
    4
    >>> resolve_jobs(None) >= 1
    True
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def split_chunks(
    items: Sequence[_Chunk], chunks: int
) -> List[List[_Chunk]]:
    """Split ``items`` into at most ``chunks`` contiguous, non-empty
    chunks of near-equal size, preserving order.

    >>> split_chunks([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    >>> split_chunks([1], 4)
    [[1]]
    """
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    count = min(chunks, len(items))
    if count <= 1:
        return [list(items)] if items else []
    size, extra = divmod(len(items), count)
    result: List[List[_Chunk]] = []
    start = 0
    for i in range(count):
        stop = start + size + (1 if i < extra else 0)
        result.append(list(items[start:stop]))
        start = stop
    return result


def pack_masks(masks: Sequence[int], slot_bytes: int) -> bytes:
    """Serialize vertex bitmasks into fixed-width little-endian bytes.

    ``slot_bytes`` must cover the widest mask (the kernels'
    ``ReduceContext.slot_bytes`` does by construction).  Workers ship
    step-5 mask batches this way because a ``bytes`` blob pickles as a
    single buffer, unlike a list of arbitrary-precision ints.

    >>> unpack_masks(pack_masks([5, 2], 2), 2)
    [5, 2]
    """
    return b"".join(
        mask.to_bytes(slot_bytes, "little") for mask in masks
    )


def unpack_masks(blob: bytes, slot_bytes: int) -> List[int]:
    """Inverse of :func:`pack_masks`."""
    if len(blob) % slot_bytes:
        raise ValueError(
            f"blob of {len(blob)} bytes is not a multiple of "
            f"slot_bytes={slot_bytes}"
        )
    return [
        int.from_bytes(blob[start:start + slot_bytes], "little")
        for start in range(0, len(blob), slot_bytes)
    ]


def _note_pool_fallback(recorder: Recorder, stage: str) -> None:
    """Record one degrade-to-serial event on ``recorder``."""
    recorder.count(
        "repro_parallel_pool_fallback_total",
        1,
        labels={"stage": stage},
    )


def process_map(
    fn: Callable[[_Chunk], _Result],
    chunked_args: Sequence[_Chunk],
    jobs: int,
    recorder: Recorder = NULL_RECORDER,
    stage: str = "",
) -> List[_Result]:
    """Apply ``fn`` to each chunk, in worker processes when ``jobs > 1``.

    Results come back in submission order regardless of completion
    order.  ``fn`` must be a module-level function and the chunks must
    be picklable.  Falls back to serial execution when the pool cannot
    be created or there is nothing worth fanning out; with an enabled
    ``recorder`` the degrade is visible as one increment of
    ``repro_parallel_pool_fallback_total{stage}``.
    """
    if jobs <= 1 or len(chunked_args) <= 1:
        return [fn(chunk) for chunk in chunked_args]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chunked_args))
        ) as pool:
            return list(pool.map(fn, chunked_args))
    except (OSError, ImportError):
        # No usable process pool in this environment — mine serially.
        _note_pool_fallback(recorder, stage)
        return [fn(chunk) for chunk in chunked_args]


class _Timed:
    """Picklable wrapper timing ``fn`` inside the worker process."""

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, chunk: object) -> Tuple[float, object]:
        started = perf_counter()
        result = self.fn(chunk)
        return perf_counter() - started, result


def process_map_timed(
    fn: Callable[[_Chunk], _Result],
    chunked_args: Sequence[_Chunk],
    jobs: int,
    recorder: Recorder = NULL_RECORDER,
    stage: str = "",
) -> List[_Result]:
    """:func:`process_map` plus per-job timing observability.

    With an enabled recorder, each chunk's in-worker wall time is
    recorded into the ``repro_parallel_chunk_seconds`` histogram
    (labelled by ``stage``) — observations are folded in *submission*
    order, so the merged metrics are deterministic regardless of which
    worker finished first (histogram folding is commutative besides).
    Under the null recorder this is exactly :func:`process_map`.
    """
    if not recorder.enabled:
        return process_map(fn, chunked_args, jobs, recorder, stage)
    results: List[_Result] = []
    for elapsed, result in process_map(
        _Timed(fn), chunked_args, jobs, recorder, stage
    ):
        recorder.observe(
            "repro_parallel_chunk_seconds",
            elapsed,
            labels={"stage": stage},
        )
        results.append(result)
    recorder.count(
        "repro_parallel_chunks_total",
        len(chunked_args),
        labels={"stage": stage},
    )
    return results


def process_fold(
    fn: Callable[[_Chunk], _Result],
    chunk_iter: Iterable[_Chunk],
    jobs: int,
    fold: Callable[[_Result], object],
    recorder: Recorder = NULL_RECORDER,
    stage: str = "",
) -> int:
    """Stream chunks through ``fn``, folding each result in order.

    The out-of-core counterpart of :func:`process_map`: ``chunk_iter``
    is consumed lazily with at most ``2 * jobs`` chunks in flight, and
    each worker's single compact result is handed to ``fold`` in
    *submission* order, so the outcome matches the serial fold exactly
    whenever ``fold`` is deterministic.  Neither the chunks nor the
    results are ever held all at once, which is what keeps streaming
    mining's memory constant in the number of executions.

    With an enabled recorder, the bytes actually shipped back over IPC
    are counted into ``repro_parallel_ipc_bytes_total{stage,
    payload="result"}`` (pickled result size — the pool's own wire
    encoding).  Falls back to serial execution when the pool cannot be
    created, incrementing ``repro_parallel_pool_fallback_total{stage}``.
    Returns the number of chunks folded.
    """
    chunks = iter(chunk_iter)
    folded = 0
    if jobs > 1:
        try:
            first = next(chunks)
        except StopIteration:
            return 0
        pool = None
        try:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(max_workers=jobs)
            pending: Deque = deque()
            # Worker spawn happens inside submit, so sandboxes with no
            # usable fork/spawn fail here — before any result has been
            # folded — and the serial fallback sees every chunk.
            pending.append(pool.submit(fn, first))
        except (OSError, ImportError):
            if pool is not None:
                pool.shutdown(wait=False)
            _note_pool_fallback(recorder, stage)
            fold(fn(first))
            folded += 1
        else:
            measure = recorder.enabled

            def drain() -> None:
                nonlocal folded
                result = pending.popleft().result()
                if measure:
                    recorder.count(
                        "repro_parallel_ipc_bytes_total",
                        len(pickle.dumps(result)),
                        labels={"stage": stage, "payload": "result"},
                    )
                fold(result)
                folded += 1

            window = 2 * jobs
            with pool:
                for chunk in chunks:
                    pending.append(pool.submit(fn, chunk))
                    while len(pending) >= window:
                        drain()
                while pending:
                    drain()
            return folded
    for chunk in chunks:
        fold(fn(chunk))
        folded += 1
    return folded


# ----------------------------------------------------------------------
# Supervised fold (timeouts, retries, poisoned-chunk quarantine)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff budget for :func:`supervised_fold`.

    ``timeout`` is the per-chunk stall detector in seconds (``None``
    waits forever, degenerating to :func:`process_fold` semantics).
    A failed chunk is retried up to ``max_retries`` times with seeded
    exponential backoff — attempt *k* sleeps ``backoff_base *
    backoff_factor**(k-1)`` capped at ``backoff_max``, stretched by up
    to ``jitter`` of itself using a ``seed``-derived RNG so runs are
    reproducible — and is *poisoned* (skipped, reported, counted) once
    the budget is exhausted, letting the fold continue degraded rather
    than fail the whole mine.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")

    def backoff(self, attempt: int, key: object = "") -> float:
        """Seconds to sleep before retry ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if not self.jitter or not base:
            return base
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class _Supervised:
    """One in-flight chunk: its payload, submission index, attempts."""

    chunk: object
    index: int
    attempts: int = 0
    future: object = None


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a ProcessPoolExecutor down, hung/crashed workers included.

    ``shutdown`` alone joins workers, which never returns while one is
    hung; terminate them first.  Private-attribute access is deliberate
    — the executor API has no kill switch — and guarded so a changed
    stdlib degrades to a plain shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, AttributeError):  # pragma: no cover
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover  # devlint: ignore[RL403]
        # Defensive teardown of an already-broken pool: any error here
        # must not mask the original failure being propagated.
        pass


def supervised_fold(
    fn: Callable[[_Chunk], _Result],
    chunk_iter: Iterable[_Chunk],
    jobs: int,
    fold: Callable[[_Result], object],
    policy: Optional[RetryPolicy] = None,
    recorder: Recorder = NULL_RECORDER,
    stage: str = "",
    on_poisoned: Optional[Callable[[_Chunk, str], object]] = None,
) -> int:
    """:func:`process_fold` under supervision: survive sick workers.

    Same contract as :func:`process_fold` — lazy chunk iterator,
    bounded in-flight window, results folded strictly in submission
    order — plus a supervisor around the pool:

    * a chunk whose result does not arrive within ``policy.timeout``
      seconds (hung worker) or whose worker died (crashed/OOM-killed
      process, raised exception) is retried: the pool is torn down
      (terminating hung workers), rebuilt, and every pending chunk is
      resubmitted in order after a seeded exponential backoff;
    * a chunk that exhausts ``policy.max_retries`` is **poisoned**:
      reported through ``on_poisoned(chunk, reason)`` (reason is
      ``"timeout"``, ``"worker-crash"`` or ``"error: ..."``), counted,
      skipped, and the fold continues degraded — deterministic given a
      deterministic failure pattern, since supervision never reorders
      the fold.

    Counters (all labelled ``{stage}``):
    ``repro_fold_timeouts_total``, ``repro_fold_retries_total``,
    ``repro_fold_poisoned_chunks_total``.

    Serial mode (``jobs <= 1`` or no usable pool) applies the same
    retry/poison budget to in-process calls; timeouts cannot be
    enforced without a worker process and are ignored there.  Returns
    the number of chunks successfully folded.
    """
    import concurrent.futures as futures_mod

    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - no multiprocessing at all

        class BrokenProcessPool(Exception):  # type: ignore[no-redef]
            pass

    policy = policy if policy is not None else RetryPolicy()

    def note(counter: str, amount: int = 1) -> None:
        recorder.count(counter, amount, labels={"stage": stage})

    def poison(entry: _Supervised, reason: str) -> None:
        note("repro_fold_poisoned_chunks_total")
        if on_poisoned is not None:
            on_poisoned(entry.chunk, reason)

    def fold_serial_with_retries(entry: _Supervised) -> int:
        while True:
            try:
                result = fn(entry.chunk)
            except Exception as exc:  # devlint: ignore[RL403]
                # Supervision point: injected I/O faults are *meant*
                # to land here and be retried/poisoned, not propagate
                # (InjectedTear stays uncatchable via BaseException).
                entry.attempts += 1
                if entry.attempts > policy.max_retries:
                    poison(entry, f"error: {exc}")
                    return 0
                note("repro_fold_retries_total")
                time.sleep(policy.backoff(entry.attempts, entry.index))
            else:
                fold(result)
                return 1

    chunks = iter(chunk_iter)
    folded = 0
    submitted = 0

    def entry_for(chunk: _Chunk) -> _Supervised:
        nonlocal submitted
        submitted += 1
        return _Supervised(chunk=chunk, index=submitted - 1)

    if jobs <= 1:
        for chunk in chunks:
            folded += fold_serial_with_retries(entry_for(chunk))
        return folded

    try:
        first = next(chunks)
    except StopIteration:
        return 0
    pool = None
    pending: Deque[_Supervised] = deque()
    try:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=jobs)
        head = entry_for(first)
        head.future = pool.submit(fn, head.chunk)
        pending.append(head)
    except (OSError, ImportError):
        if pool is not None:
            pool.shutdown(wait=False)
        _note_pool_fallback(recorder, stage)
        folded += fold_serial_with_retries(entry_for(first))
        for chunk in chunks:
            folded += fold_serial_with_retries(entry_for(chunk))
        return folded

    def rebuild_pool() -> bool:
        """Fresh pool + resubmit every pending chunk, in order."""
        nonlocal pool
        _kill_pool(pool)
        try:
            pool = ProcessPoolExecutor(max_workers=jobs)
            for entry in pending:
                entry.future = pool.submit(fn, entry.chunk)
        except (OSError, ImportError):
            pool = None
            return False
        return True

    def handle_failure(reason: str) -> None:
        """Retry or poison the head chunk; pool is rebuilt either way."""
        nonlocal folded
        entry = pending[0]
        entry.attempts += 1
        if entry.attempts > policy.max_retries:
            pending.popleft()
            poison(entry, reason)
        else:
            note("repro_fold_retries_total")
            time.sleep(policy.backoff(entry.attempts, entry.index))
        if not rebuild_pool():
            # The environment lost the ability to make pools mid-run;
            # finish every pending chunk serially, still in order.
            _note_pool_fallback(recorder, stage)
            while pending:
                folded += fold_serial_with_retries(pending.popleft())

    def drain() -> None:
        nonlocal folded
        entry = pending[0]
        if entry.future is None:  # pragma: no cover - serial drained
            return
        try:
            result = entry.future.result(timeout=policy.timeout)
        except futures_mod.TimeoutError:
            note("repro_fold_timeouts_total")
            handle_failure("timeout")
            return
        except BrokenProcessPool:
            handle_failure("worker-crash")
            return
        except Exception as exc:  # devlint: ignore[RL403]
            # Supervision point: a worker-raised fault becomes a
            # retry (then quarantine), never a silent drop.
            handle_failure(f"error: {exc}")
            return
        pending.popleft()
        fold(result)
        folded += 1

    window = 2 * jobs
    try:
        for chunk in chunks:
            if pool is None:
                folded += fold_serial_with_retries(entry_for(chunk))
                continue
            entry = entry_for(chunk)
            entry.future = pool.submit(fn, entry.chunk)
            pending.append(entry)
            while len(pending) >= window:
                drain()
        while pending:
            drain()
    finally:
        if pool is not None:
            _kill_pool(pool)
    return folded
