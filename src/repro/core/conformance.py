"""Consistency and conformance checks (Definitions 6 and 7).

* :func:`is_consistent` — Definition 6: can the execution have been a
  successful run of the graph?
* :func:`check_conformance` — Definition 7: dependency completeness,
  irredundancy of dependencies, execution completeness of a mined graph
  against a log.

These are *reference validators*: they recompute the dependence relation
from scratch and inspect paths, so they are O(n³)-ish per call and meant
for tests, benches and spot checks, not for the mining hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.dependency import DependencyRelation, dependency_relation
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive import transitive_closure
from repro.logs.event_log import EventLog
from repro.logs.execution import Execution


@dataclass
class ConformanceReport:
    """Outcome of checking a mined graph against a log (Definition 7).

    Attributes
    ----------
    missing_dependencies:
        Dependence pairs ``(a, b)`` (``b`` depends on ``a``) with no path
        ``a -> b`` in the graph — dependency completeness violations.
    spurious_paths:
        Independent pairs connected by a path — irredundancy violations.
    inconsistent_executions:
        ``(execution_id, reason)`` pairs for executions the graph does not
        admit — execution completeness violations.
    """

    missing_dependencies: List[tuple] = field(default_factory=list)
    spurious_paths: List[tuple] = field(default_factory=list)
    inconsistent_executions: List[tuple] = field(default_factory=list)

    @property
    def is_conformal(self) -> bool:
        """Whether all three Definition 7 properties hold."""
        return not (
            self.missing_dependencies
            or self.spurious_paths
            or self.inconsistent_executions
        )

    def violations(self) -> List[str]:
        """All violations as human-readable strings."""
        messages = [
            f"no path for dependency {a!r} -> {b!r}"
            for a, b in self.missing_dependencies
        ]
        messages += [
            f"spurious path between independent activities {a!r} and {b!r}"
            for a, b in self.spurious_paths
        ]
        messages += [
            f"execution {eid!r} not admitted: {reason}"
            for eid, reason in self.inconsistent_executions
        ]
        return messages


def is_consistent(
    graph: DiGraph,
    execution: Execution,
    source: str,
    sink: str,
) -> Optional[str]:
    """Check Definition 6; return ``None`` if consistent, else the reason.

    The checks, in the paper's order:

    1. the execution's activities are a subset of the graph's vertices;
    2. the induced subgraph (all graph edges between executed activities)
       is weakly connected;
    3. the first and last activities are the process' initiating and
       terminating activities;
    4. every executed activity is reachable from the initiating activity
       within the induced subgraph;
    5. no dependency is violated: for executed ``u``, ``v``, a path
       ``u -> v`` in the induced subgraph requires ``u`` to terminate
       before ``v`` starts.
    """
    activities = execution.activities
    if not activities:
        return "execution is empty"
    alien = sorted(a for a in activities if not graph.has_node(a))
    if alien:
        return f"activities not in the graph: {alien}"

    induced = graph.subgraph(activities)

    if not _weakly_connected(induced):
        return "induced subgraph is not connected"

    if execution.first_activity != source:
        return (
            f"first activity {execution.first_activity!r} is not the "
            f"initiating activity {source!r}"
        )
    if execution.last_activity != sink:
        return (
            f"last activity {execution.last_activity!r} is not the "
            f"terminating activity {sink!r}"
        )

    if source not in activities:
        return f"initiating activity {source!r} was not executed"
    reachable = {source}
    frontier = [source]
    while frontier:
        node = frontier.pop()
        for child in induced.successors(node):
            if child not in reachable:
                reachable.add(child)
                frontier.append(child)
    unreached = sorted(activities - reachable)
    if unreached:
        return (
            f"activities not reachable from {source!r} in the induced "
            f"subgraph: {unreached}"
        )

    # Dependency-order check: induced paths must agree with time order.
    closure = transitive_closure(induced)
    position = _completion_order(execution)
    for u, v in closure.edges():
        if u == v:
            continue
        if position[v] < position[u]:
            return (
                f"ordering violates the dependency {u!r} -> {v!r} "
                f"({v!r} ran before {u!r})"
            )
    return None


def check_conformance(
    graph: DiGraph,
    log: EventLog,
    relation: Optional[DependencyRelation] = None,
    source: Optional[str] = None,
    sink: Optional[str] = None,
) -> ConformanceReport:
    """Check the three Definition 7 properties of ``graph`` against ``log``.

    Parameters
    ----------
    graph:
        The mined graph.
    log:
        The log the graph was mined from.
    relation:
        Optional precomputed dependence relation (recomputed otherwise).
    source, sink:
        The initiating/terminating activities; inferred from the first
        execution when omitted.
    """
    log.require_non_empty()
    relation = relation or dependency_relation(log)
    if source is None:
        source = log[0].first_activity
    if sink is None:
        sink = log[0].last_activity

    report = ConformanceReport()
    closure = transitive_closure(graph)

    # Dependency completeness.
    for prerequisite, dependent in sorted(relation.depends):
        if not closure.has_edge(prerequisite, dependent):
            report.missing_dependencies.append((prerequisite, dependent))

    # Irredundancy: no path between independent activities.
    ordered = sorted(relation.activities)
    for i, first in enumerate(ordered):
        for second in ordered[i + 1:]:
            if not relation.independent(first, second):
                continue
            if closure.has_edge(first, second):
                report.spurious_paths.append((first, second))
            elif closure.has_edge(second, first):
                report.spurious_paths.append((second, first))

    # Execution completeness.
    for execution in log:
        reason = is_consistent(graph, execution, source, sink)
        if reason is not None:
            report.inconsistent_executions.append(
                (execution.execution_id, reason)
            )
    return report


def _weakly_connected(graph: DiGraph) -> bool:
    nodes = list(graph.nodes())
    if len(nodes) <= 1:
        return True
    seen = {nodes[0]}
    frontier = [nodes[0]]
    while frontier:
        node = frontier.pop()
        for neighbour in graph.successors(node) | graph.predecessors(node):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) == len(nodes)


def _completion_order(execution: Execution) -> dict:
    """Map each activity to its first start position in the execution."""
    position = {}
    for index, activity in enumerate(execution.sequence):
        if activity not in position:
            position[activity] = index
    return position
