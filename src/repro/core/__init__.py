"""The paper's mining algorithms and supporting theory.

* :mod:`repro.core.followings` — the "following" relation of Definition 3
  and the per-execution ordered-pair extraction shared by every miner;
* :mod:`repro.core.dependency` — dependence / independence (Definition 4)
  and reference dependency graphs (Definition 5);
* :mod:`repro.core.special_dag` — **Algorithm 1** (each activity in every
  execution; provably minimal conformal graph);
* :mod:`repro.core.general_dag` — **Algorithm 2** (activities may be
  optional);
* :mod:`repro.core.cyclic` — **Algorithm 3** (cycles via instance
  relabelling);
* :mod:`repro.core.noise` — frequency-threshold noise handling and the
  Section 6 threshold analysis;
* :mod:`repro.core.conformance` — Definitions 6 and 7 checks;
* :mod:`repro.core.conditions` — Problem 2, learning edge conditions;
* :mod:`repro.core.miner` — the :class:`ProcessMiner` facade.
"""

from repro.core.conditions import ConditionsMiner, MinedCondition
from repro.core.conformance import (
    ConformanceReport,
    check_conformance,
    is_consistent,
)
from repro.core.cyclic import mine_cyclic
from repro.core.dependency import DependencyRelation, dependency_relation
from repro.core.followings import FollowRelation, follow_relation
from repro.core.general_dag import mine_general_dag
from repro.core.incremental import IncrementalMiner
from repro.core.miner import MiningResult, ProcessMiner
from repro.core.minimize import minimization_gap, minimize_conformal
from repro.core.noise import (
    NoiseThreshold,
    optimal_threshold,
    threshold_error_probability,
)
from repro.core.special_dag import mine_special_dag

__all__ = [
    "ConditionsMiner",
    "ConformanceReport",
    "DependencyRelation",
    "FollowRelation",
    "IncrementalMiner",
    "MinedCondition",
    "MiningResult",
    "NoiseThreshold",
    "ProcessMiner",
    "check_conformance",
    "dependency_relation",
    "follow_relation",
    "is_consistent",
    "mine_cyclic",
    "mine_general_dag",
    "mine_special_dag",
    "minimization_gap",
    "minimize_conformal",
    "optimal_threshold",
    "threshold_error_probability",
]
